// View-holder death: the recovery sweep must find pins recorded in the
// dead process's view table, release them, and leave every block and slab
// accounted for.  Simulated kills (deterministic fault plans) and a real
// SIGKILL across fork cover both failure paths.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "mpf/benchlib/simrun.hpp"
#include "mpf/core/facility.hpp"
#include "mpf/shm/region.hpp"
#include "mpf/sim/fault.hpp"

namespace {

using namespace mpf;
using namespace mpf::benchlib;

Config chaos_config(std::size_t slab_threshold = 0) {
  Config c;
  c.max_lnvcs = 8;
  c.max_processes = 4;
  c.block_payload = 10;
  c.message_blocks = 2048;
  c.suspicion_ns = 1'000'000;  // 1 ms of virtual time
  c.slab_threshold = slab_threshold;
  return c;
}

// Rank 1 claims a view of rank 0's 400-byte message and is killed while
// still holding it (at its 5th noise send, so the pin is long established).
// Rank 0 drains noise until its peer's death surfaces, then returns; the
// final sweep must unpin the view and reclaim the message.
ChaosMetrics run_killed_holder(const Config& config) {
  sim::FaultPlan plan;
  plan.actions.push_back({sim::FaultAction::Kind::kill_at_send, 1, 0, 5, 0});
  return run_chaos(config, 2, plan, [](Facility f, int rank) {
    if (rank == 0) {
      LnvcId data_tx = kInvalidLnvc, noise_rx = kInvalidLnvc;
      if (f.open_send(0, "data", &data_tx) != Status::ok) return;
      if (f.open_receive(0, "noise", Protocol::fcfs, &noise_rx) !=
          Status::ok) {
        return;
      }
      std::vector<std::byte> payload(400, std::byte{0x5a});
      if (f.send(0, data_tx, payload.data(), payload.size()) != Status::ok) {
        return;
      }
      std::uint32_t v = 0;
      std::size_t len = 0;
      for (int i = 0; i < 64; ++i) {
        const Status s =
            f.receive_for(0, noise_rx, &v, sizeof(v), &len, 2'000'000);
        if (s != Status::ok && s != Status::truncated) break;
      }
    } else {
      LnvcId data_rx = kInvalidLnvc, noise_tx = kInvalidLnvc;
      if (f.open_receive(1, "data", Protocol::fcfs, &data_rx) != Status::ok) {
        return;
      }
      if (f.open_send(1, "noise", &noise_tx) != Status::ok) return;
      MsgView view;
      if (f.receive_view(1, data_rx, &view) != Status::ok) return;
      // Never released: the plan kills this process mid-send below.
      for (std::uint32_t n = 0; n < 1'000'000; ++n) {
        if (f.send(1, noise_tx, &n, sizeof(n)) != Status::ok) break;
      }
    }
  });
}

TEST(ViewChaos, KilledViewHolderIsUnpinnedAndConserved) {
  const ChaosMetrics m = run_killed_holder(chaos_config());
  EXPECT_EQ(m.kills, 1u);
  EXPECT_GE(m.reaps, 1u);
  EXPECT_TRUE(m.blocks_conserved)
      << "free=" << m.audit.blocks_free << " cached=" << m.audit.blocks_cached
      << " queued=" << m.audit.blocks_queued
      << " journaled=" << m.audit.blocks_journaled
      << " total=" << m.audit.blocks_total;
  EXPECT_TRUE(m.audit.consistent());
}

TEST(ViewChaos, KilledSlabViewHolderConservesSlabs) {
  // 400-byte message over a 64-byte threshold: the pinned payload is one
  // slab extent, so the sweep exercises slab conservation too.
  const ChaosMetrics m = run_killed_holder(chaos_config(64));
  EXPECT_EQ(m.kills, 1u);
  EXPECT_GE(m.reaps, 1u);
  EXPECT_GT(m.audit.slabs_total, 0u);
  EXPECT_TRUE(m.blocks_conserved);
  EXPECT_TRUE(m.audit.consistent())
      << "slabs free=" << m.audit.slabs_free
      << " queued=" << m.audit.slabs_queued
      << " journaled=" << m.audit.slabs_journaled
      << " total=" << m.audit.slabs_total;
}

TEST(ViewChaos, SigkilledForkedViewHolderUnpinsOnReap) {
  Config c;
  c.max_lnvcs = 8;
  c.max_processes = 8;
  c.block_payload = 10;
  c.message_blocks = 4096;
  c.suspicion_ns = 20'000'000;  // 20 ms: keep native seizure waits short
  shm::AnonSharedRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);

  LnvcId data_tx = kInvalidLnvc, ack_rx = kInvalidLnvc;
  ASSERT_EQ(f.open_send(0, "data", &data_tx), Status::ok);
  ASSERT_EQ(f.open_receive(0, "ack", Protocol::fcfs, &ack_rx), Status::ok);
  std::vector<std::byte> payload(200, std::byte{0xa5});
  ASSERT_EQ(f.send(0, data_tx, payload.data(), payload.size()), Status::ok);

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: pin the message, tell the parent, then hold the view until
    // SIGKILLed.
    LnvcId rx = kInvalidLnvc, tx = kInvalidLnvc;
    if (f.open_receive(1, "data", Protocol::fcfs, &rx) != Status::ok) {
      _exit(30);
    }
    if (f.open_send(1, "ack", &tx) != Status::ok) _exit(31);
    MsgView view;
    if (f.receive_view(1, rx, &view) != Status::ok) _exit(32);
    if (view.length != payload.size()) _exit(33);
    const char ok = 1;
    if (f.send(1, tx, &ok, sizeof(ok)) != Status::ok) _exit(34);
    for (;;) ::pause();
  }
  char ok = 0;
  std::size_t len = 0;
  ASSERT_EQ(f.receive(0, ack_rx, &ok, sizeof(ok), &len), Status::ok);
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);

  // The orphan report attributes the held view to the dead child.
  EXPECT_FALSE(f.process_alive(1));
  bool found = false;
  for (const OrphanInfo& o : f.orphan_infos()) {
    if (o.pid != 1) continue;
    found = true;
    EXPECT_FALSE(o.os_alive);
    EXPECT_EQ(o.views, 1u);
  }
  EXPECT_TRUE(found);

  ASSERT_EQ(f.reap(0, 1), Status::ok);
  for (const OrphanInfo& o : f.orphan_infos()) {
    if (o.pid == 1) {
      EXPECT_EQ(o.views, 0u);
    }
  }
  const BlockAudit audit = f.block_audit();
  EXPECT_TRUE(audit.consistent());
  EXPECT_EQ(audit.in_flight(), 0u);
  EXPECT_GE(f.stats().reaps, 1u);
}

TEST(ViewChaos, SigkilledDifferentBaseViewHolderConserved) {
  // Same orphan sweep, but the dead holder pinned its view through a
  // DIFFERENT mapping of the region (fresh attach, not the fork-inherited
  // one).  The reaper walks the dead view table through its own base, so
  // conservation only holds if the table records offsets, not pointers.
  const std::string name =
      "/mpf_view_chaos_" + std::to_string(getpid());
  Config c;
  c.max_lnvcs = 8;
  c.max_processes = 8;
  c.block_payload = 10;
  c.message_blocks = 4096;
  c.suspicion_ns = 20'000'000;
  c.slab_threshold = 64;  // the pinned payload is a slab extent
  auto region = shm::PosixShmRegion::create(name, c.derived_arena_bytes());
  Facility f = Facility::create(c, *region);

  LnvcId data_tx = kInvalidLnvc, ack_rx = kInvalidLnvc;
  ASSERT_EQ(f.open_send(0, "data", &data_tx), Status::ok);
  ASSERT_EQ(f.open_receive(0, "ack", Protocol::fcfs, &ack_rx), Status::ok);
  std::vector<std::byte> payload(400, std::byte{0xa5});
  ASSERT_EQ(f.send(0, data_tx, payload.data(), payload.size()), Status::ok);

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: attach at a new base, pin the slab message through THAT
    // mapping, tell the parent, hold the view until SIGKILLed.
    int code = 0;
    try {
      auto mine = shm::PosixShmRegion::attach(name);
      if (mine->base() == region->base()) _exit(40);
      Facility g = Facility::attach(*mine);
      LnvcId rx = kInvalidLnvc, tx = kInvalidLnvc;
      if (g.open_receive(1, "data", Protocol::fcfs, &rx) != Status::ok) {
        _exit(41);
      }
      if (g.open_send(1, "ack", &tx) != Status::ok) _exit(42);
      MsgView view;
      if (g.receive_view(1, rx, &view) != Status::ok) _exit(43);
      if (!view.slab || view.length != payload.size()) _exit(44);
      const char ok = 1;
      if (g.send(1, tx, &ok, sizeof(ok)) != Status::ok) _exit(45);
      for (;;) ::pause();
    } catch (...) {
      code = 46;
    }
    _exit(code);
  }
  char ok = 0;
  std::size_t len = 0;
  ASSERT_EQ(f.receive(0, ack_rx, &ok, sizeof(ok), &len), Status::ok);
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);

  bool found = false;
  for (const OrphanInfo& o : f.orphan_infos()) {
    if (o.pid != 1) continue;
    found = true;
    EXPECT_EQ(o.views, 1u);
  }
  EXPECT_TRUE(found);

  ASSERT_EQ(f.reap(0, 1), Status::ok);
  // Block AND slab conservation through the reaper's own (original)
  // mapping: every extent the dead holder pinned is back in circulation.
  const BlockAudit audit = f.block_audit();
  EXPECT_TRUE(audit.consistent())
      << "blocks free=" << audit.blocks_free
      << " cached=" << audit.blocks_cached
      << " queued=" << audit.blocks_queued
      << " journaled=" << audit.blocks_journaled
      << " total=" << audit.blocks_total
      << "; slabs free=" << audit.slabs_free
      << " queued=" << audit.slabs_queued
      << " journaled=" << audit.slabs_journaled
      << " total=" << audit.slabs_total;
  EXPECT_GT(audit.slabs_total, 0u);
  EXPECT_EQ(audit.slabs_free, audit.slabs_total);
  EXPECT_EQ(audit.in_flight(), 0u);
}

}  // namespace
