// Simulator event tracing: completeness, ordering, and CSV export.
#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "mpf/core/facility.hpp"
#include "mpf/shm/region.hpp"
#include "mpf/sim/sim_platform.hpp"
#include "mpf/sim/trace.hpp"

namespace {

using namespace mpf;
using sim::Simulator;
using sim::Trace;
using sim::TraceKind;

TEST(Trace, RecordsScheduleEvents) {
  Simulator sim;
  Trace trace;
  sim.set_trace(&trace);
  sync::SpinLock lock;
  sim.spawn_group(3, [&](int) {
    for (int i = 0; i < 4; ++i) {
      sim.mutex_lock(&lock);
      sim.advance(1000);
      sim.mutex_unlock(&lock);
    }
  });
  sim.run();
  EXPECT_EQ(trace.count(TraceKind::lock_acquire), 12u);
  EXPECT_EQ(trace.count(TraceKind::lock_release), 12u);
  EXPECT_EQ(trace.count(TraceKind::advance), 12u);
  EXPECT_EQ(trace.count(TraceKind::done), 3u);
  EXPECT_GT(trace.count(TraceKind::lock_wait), 0u) << "3 procs must contend";
}

TEST(Trace, PerProcessTimesAreMonotone) {
  // Events are stamped *after* their charge is applied, so the global log
  // can show a later-stamped event before an earlier process runs; within
  // one process, however, time never goes backwards.
  Simulator sim;
  Trace trace;
  sim.set_trace(&trace);
  sim.spawn_group(4, [&](int rank) {
    for (int i = 0; i < 5; ++i) sim.advance(100 * (rank + 1));
  });
  sim.run();
  std::map<int, std::uint64_t> last;
  for (const auto& e : trace.events()) {
    auto it = last.find(e.process);
    if (it != last.end()) {
      EXPECT_LE(it->second, e.time_ns) << "process " << e.process;
    }
    last[e.process] = e.time_ns;
  }
  EXPECT_EQ(last.size(), 4u);
}

TEST(Trace, CapturesMpfTraffic) {
  Simulator sim;
  sim::SimPlatform platform(sim);
  Trace trace;
  sim.set_trace(&trace);
  Config c;
  c.max_lnvcs = 4;
  c.max_processes = 4;
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region, platform);
  sim.spawn([&] {
    LnvcId tx, rx;
    ASSERT_EQ(f.open_send(0, "t", &tx), Status::ok);
    ASSERT_EQ(f.open_receive(0, "t", Protocol::fcfs, &rx), Status::ok);
    char buf[32] = {};
    std::size_t len = 0;
    for (int i = 0; i < 5; ++i) {
      ASSERT_EQ(f.send(0, tx, buf, sizeof(buf)), Status::ok);
      ASSERT_EQ(f.receive(0, rx, buf, sizeof(buf), &len), Status::ok);
    }
  });
  sim.run();
  // 5 sends + 5 receives = 10 modeled copies of 32 bytes.
  EXPECT_EQ(trace.count(TraceKind::copy), 10u);
  for (const auto& e : trace.events()) {
    if (e.kind == TraceKind::copy) EXPECT_EQ(e.detail, 32u);
  }
}

TEST(Trace, CsvExport) {
  Trace trace;
  trace.record(100, 0, TraceKind::advance, 42);
  trace.record(250, 1, TraceKind::copy, 1024);
  std::ostringstream os;
  trace.write_csv(os);
  EXPECT_EQ(os.str(),
            "time_ns,process,kind,detail\n"
            "100,0,advance,42\n"
            "250,1,copy,1024\n");
}

TEST(Trace, ClearAndReuse) {
  Trace trace;
  trace.record(1, 0, TraceKind::done, 0);
  EXPECT_EQ(trace.size(), 1u);
  trace.clear();
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.count(TraceKind::done), 0u);
}

TEST(Trace, DisabledByDefaultCostsNothing) {
  Simulator sim;
  sim.spawn([&] { sim.advance(100); });
  sim.run();  // no trace attached: must simply work
  SUCCEED();
}

}  // namespace
