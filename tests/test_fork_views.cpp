// Zero-copy views across fork'd address spaces (DESIGN.md §9).
//
// The view record carries arena-relative offsets, so the SAME record must
// read the SAME bytes in a process that mapped the region at a different
// base address.  These tests force that situation: the child attaches the
// named segment fresh, and because the fork-inherited mapping still
// occupies the original range, mmap places the new one elsewhere — the
// child asserts the bases differ before touching a span.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "mpf/core/facility.hpp"
#include "mpf/shm/region.hpp"

namespace {

using namespace mpf;

std::vector<std::byte> pattern(std::size_t n, unsigned seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((seed * 131u + i * 7u) & 0xffu);
  }
  return v;
}

Config view_config() {
  Config c;
  c.max_lnvcs = 8;
  c.max_processes = 8;
  c.block_payload = 10;  // many fragments per message: real chain walks
  c.message_blocks = 4096;
  return c;
}

// Child-side body shared by both variants: attach fresh (different base),
// view the pending message, check it bit-exactly against `payload` through
// BOTH read paths (materialized spans and copy_view), echo it back through
// a scatter-gather send straight from the pinned spans, release.  Returns
// a nonzero code on the first failing step.
int view_echo_child(const std::string& name, const void* parent_base,
                    const std::vector<std::byte>& payload,
                    bool expect_slab) {
  try {
    auto mine = shm::PosixShmRegion::attach(name);
    if (mine->base() == parent_base) return 30;  // must be a new mapping
    Facility g = Facility::attach(*mine);
    LnvcId rx, tx;
    if (g.open_receive(1, "fwd", Protocol::fcfs, &rx) != Status::ok) {
      return 31;
    }
    if (g.open_send(1, "back", &tx) != Status::ok) return 32;

    MsgView view;
    if (g.receive_view(1, rx, &view) != Status::ok) return 33;
    if (view.length != payload.size()) return 34;
    if (view.slab != expect_slab) return 35;

    // Path 1: materialize the offset spans against THIS mapping.
    const std::vector<ConstBuffer> spans = g.materialize(view);
    std::size_t at = 0;
    for (const ConstBuffer& s : spans) {
      if (std::memcmp(s.data, payload.data() + at, s.len) != 0) return 36;
      at += s.len;
    }
    if (at != payload.size()) return 37;

    // Path 2: the bounded copy-out convenience.
    std::vector<std::byte> copied(payload.size());
    if (g.copy_view(view, copied.data(), copied.size()) != payload.size()) {
      return 38;
    }
    if (copied != payload) return 39;

    // Round-trip: gather straight from the pinned message.
    if (g.send_v(1, tx, spans) != Status::ok) return 40;
    if (g.release_view(1, &view) != Status::ok) return 41;
  } catch (...) {
    return 42;
  }
  return 0;
}

void run_round_trip(const Config& c, std::size_t bytes, unsigned seed,
                    bool expect_slab) {
  const std::string name = "/mpf_fork_view_" + std::to_string(getpid()) +
                           (expect_slab ? "s" : "b");
  auto region = shm::PosixShmRegion::create(name, c.derived_arena_bytes());
  Facility f = Facility::create(c, *region);
  LnvcId tx, rx;
  ASSERT_EQ(f.open_send(0, "fwd", &tx), Status::ok);
  ASSERT_EQ(f.open_receive(0, "back", Protocol::fcfs, &rx), Status::ok);

  const auto payload = pattern(bytes, seed);
  ASSERT_EQ(f.send(0, tx, payload.data(), payload.size()), Status::ok);

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    _exit(view_echo_child(name, region->base(), payload, expect_slab));
  }
  // The echo came back through the child's mapping: byte-compare it here,
  // in the parent's mapping, closing the cross-address-space loop.
  std::vector<std::byte> back(payload.size());
  std::size_t len = 0;
  ASSERT_EQ(f.receive(0, rx, back.data(), back.size(), &len), Status::ok);
  EXPECT_EQ(len, payload.size());
  EXPECT_EQ(back, payload);

  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "child exit " << (WIFEXITED(status) ? WEXITSTATUS(status) : -1);

  const BlockAudit audit = f.block_audit();
  EXPECT_TRUE(audit.consistent());
  EXPECT_EQ(audit.blocks_journaled, 0u);
}

TEST(ForkViews, DifferentBaseRoundTripMultiBlock) {
  // 100 bytes over 10-byte blocks: ten spans, each an offset the child
  // must resolve against its own (different-base) mapping.
  run_round_trip(view_config(), 100, 3, /*expect_slab=*/false);
}

TEST(ForkViews, DifferentBaseRoundTripSlab) {
  Config c = view_config();
  c.slab_threshold = 256;
  run_round_trip(c, 4096, 5, /*expect_slab=*/true);
}

}  // namespace
