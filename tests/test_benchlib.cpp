// The benchmark library itself: figure tables, the simulated-run harness,
// and the paper's four synthetic workloads (run small, both natively on
// threads and under the simulator).
#include <gtest/gtest.h>

#include <sstream>

#include "mpf/benchlib/figure.hpp"
#include "mpf/benchlib/simrun.hpp"
#include "mpf/benchlib/workloads.hpp"
#include "mpf/runtime/group.hpp"
#include "mpf/shm/region.hpp"

namespace {

using namespace mpf;
using namespace mpf::benchlib;

TEST(Figure, TableLaysOutSeriesAsColumns) {
  Figure fig;
  fig.id = "Figure T";
  fig.title = "Test";
  fig.xlabel = "x";
  fig.ylabel = "y";
  fig.add("a", 1, 10);
  fig.add("a", 2, 20);
  fig.add("b", 1, 100);
  fig.add("b", 3, 300);  // x=3 missing from series a
  std::ostringstream os;
  print_figure(os, fig);
  const std::string out = os.str();
  EXPECT_NE(out.find("Figure T"), std::string::npos);
  EXPECT_NE(out.find("# x = x, y = y"), std::string::npos);
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("300"), std::string::npos);
  EXPECT_NE(out.find("-"), std::string::npos) << "missing point marker";
  // Three data rows: x = 1, 2, 3.
  int rows = 0;
  for (char ch : out) rows += ch == '\n';
  EXPECT_GE(rows, 5);
}

TEST(Figure, AddAppendsToExistingSeries) {
  Figure fig;
  fig.add("s", 1, 1);
  fig.add("s", 2, 2);
  ASSERT_EQ(fig.series.size(), 1u);
  EXPECT_EQ(fig.series[0].points.size(), 2u);
}

TEST(SimRun, ReportsConsistentMetrics) {
  Config c;
  c.max_lnvcs = 8;
  c.max_processes = 4;
  const SimMetrics m = run_sim(c, 1, [](Facility f, int) {
    base_loopback(f, 64, 10);
  });
  EXPECT_GT(m.seconds, 0.0);
  EXPECT_EQ(m.sends, 10u);
  EXPECT_EQ(m.receives, 10u);
  EXPECT_EQ(m.bytes_sent, 640u);
  EXPECT_EQ(m.bytes_delivered, 640u);
  EXPECT_NEAR(m.sent_throughput(), 640.0 / m.seconds, 1.0);
}

TEST(SimRun, DeterministicAcrossInvocations) {
  Config c;
  c.max_lnvcs = 16;
  c.max_processes = 24;
  auto once = [&] {
    return run_sim(c, 6, [&](Facility f, int rank) {
      random_worker(f, rank, 6, 64, 10, 7);
    });
  };
  const SimMetrics a = once();
  const SimMetrics b = once();
  EXPECT_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.bytes_delivered, b.bytes_delivered);
  EXPECT_EQ(a.context_switches, b.context_switches);
}

// The four synthetic workloads must also be *correct* programs when run
// natively on threads (they are ordinary MPF clients).

TEST(Workloads, BaseLoopbackNative) {
  Config c;
  c.max_lnvcs = 8;
  c.max_processes = 4;
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);
  base_loopback(f, 128, 50);
  const FacilityStats s = f.stats();
  EXPECT_EQ(s.sends, 50u);
  EXPECT_EQ(s.bytes_delivered, 50u * 128u);
  EXPECT_EQ(f.lnvc_count(), 0u);
}

TEST(Workloads, FcfsNative) {
  Config c;
  c.max_lnvcs = 16;
  c.max_processes = 24;
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);
  constexpr int kRecv = 3;
  constexpr int kMsgs = 60;
  rt::run_group(rt::Backend::thread, kRecv + 1, [&](int rank) {
    if (rank == 0) {
      fcfs_sender(f, 32, kMsgs, kRecv);
    } else {
      fcfs_receiver(f, rank, kRecv);
    }
  });
  const FacilityStats s = f.stats();
  // Each message delivered once, plus the startup barrier's traffic:
  // kRecv ready tokens (4 B) and one go broadcast to kRecv+1 receivers.
  EXPECT_EQ(s.bytes_delivered, kMsgs * 32u + kRecv * 4u + (kRecv + 1) * 4u);
  EXPECT_EQ(f.lnvc_count(), 0u);
}

TEST(Workloads, BroadcastNative) {
  Config c;
  c.max_lnvcs = 16;
  c.max_processes = 24;
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);
  constexpr int kRecv = 4;
  constexpr int kMsgs = 30;
  rt::run_group(rt::Backend::thread, kRecv + 1, [&](int rank) {
    if (rank == 0) {
      broadcast_sender(f, 48, kMsgs, kRecv);
    } else {
      broadcast_receiver(f, rank, kMsgs, kRecv);
    }
  });
  const FacilityStats s = f.stats();
  // Every broadcast copy counted, plus the barrier's bytes.
  EXPECT_EQ(s.bytes_delivered,
            kRecv * kMsgs * 48u + kRecv * 4u + (kRecv + 1) * 4u);
}

TEST(Workloads, RandomNativeDeliversMostTraffic) {
  Config c;
  c.max_lnvcs = 32;
  c.max_processes = 24;
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);
  constexpr int kProcs = 6;
  constexpr int kMsgs = 40;
  rt::run_group(rt::Backend::thread, kProcs, [&](int rank) {
    random_worker(f, rank, kProcs, 16, kMsgs, 99);
  });
  const FacilityStats s = f.stats();
  // Barrier traffic: kProcs-1 ready tokens plus one go broadcast.
  EXPECT_EQ(s.sends, static_cast<std::uint64_t>(kProcs) * kMsgs + kProcs);
  // Trailing messages are discarded at close (paper §3.2 semantics), and
  // on one core the interleaving decides how many; the hard invariants
  // are no duplication and no leakage.
  EXPECT_LE(s.receives, s.sends);
  EXPECT_GE(s.receives, static_cast<std::uint64_t>(kMsgs) / 2);
  EXPECT_EQ(f.lnvc_count(), 0u);
  EXPECT_EQ(f.stats().blocks_free, c.resolved().message_blocks);
}

}  // namespace
