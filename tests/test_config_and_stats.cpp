// Config derivation and facility introspection.
#include <gtest/gtest.h>

#include "mpf/apps/coordination.hpp"
#include "mpf/core/facility.hpp"
#include "mpf/core/ports.hpp"
#include "mpf/runtime/group.hpp"
#include "mpf/shm/region.hpp"

namespace {

using namespace mpf;

TEST(Config, ResolvedFillsEveryDerivedField) {
  const Config r = Config{}.resolved();
  EXPECT_GT(r.message_blocks, 0u);
  EXPECT_GT(r.message_headers, 0u);
  EXPECT_GT(r.connections, 0u);
  EXPECT_GT(r.arena_bytes, 0u);
  EXPECT_EQ(r.block_payload, 10u);  // the paper's default
}

TEST(Config, ArenaGrowsWithMaxima) {
  Config small;
  small.max_lnvcs = 4;
  small.max_processes = 2;
  Config big;
  big.max_lnvcs = 256;
  big.max_processes = 64;
  EXPECT_LT(small.derived_arena_bytes(), big.derived_arena_bytes());
}

TEST(Config, ZeroMaximaClampToOne) {
  Config c;
  c.max_lnvcs = 0;
  c.max_processes = 0;
  const Config r = c.resolved();
  EXPECT_EQ(r.max_lnvcs, 1u);
  EXPECT_EQ(r.max_processes, 1u);
}

TEST(Config, DerivedArenaActuallySuffices) {
  // The derived size must fit the full init-time carving for a variety
  // of shapes — creation throws ArenaExhausted otherwise.
  for (const std::uint32_t lnvcs : {1u, 16u, 128u}) {
    for (const std::uint32_t procs : {1u, 8u, 64u}) {
      for (const std::uint32_t payload : {10u, 64u, 1024u}) {
        Config c;
        c.max_lnvcs = lnvcs;
        c.max_processes = procs;
        c.block_payload = payload;
        shm::HeapRegion region(c.derived_arena_bytes());
        EXPECT_NO_THROW((void)Facility::create(c, region))
            << lnvcs << "/" << procs << "/" << payload;
      }
    }
  }
}

TEST(Config, UndersizedRegionRejected) {
  Config c;
  shm::HeapRegion region(c.derived_arena_bytes() / 4);
  EXPECT_THROW((void)Facility::create(c, region), MpfError);
}

TEST(Stats, CountersTrackTraffic) {
  Config c;
  c.max_lnvcs = 4;
  c.max_processes = 4;
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);
  Participant a(f, 0);
  Participant b(f, 1);
  SendPort tx = a.open_send("s");
  ReceivePort rx = b.open_receive("s", Protocol::fcfs);
  const std::string msg(100, 'x');
  for (int i = 0; i < 5; ++i) tx.send(msg);
  std::vector<std::byte> buf(128);
  for (int i = 0; i < 3; ++i) (void)rx.receive(buf);
  const FacilityStats s = f.stats();
  EXPECT_EQ(s.sends, 5u);
  EXPECT_EQ(s.receives, 3u);
  EXPECT_EQ(s.bytes_sent, 500u);
  EXPECT_EQ(s.bytes_delivered, 300u);
  EXPECT_EQ(f.queued(tx.id()), 2u);
  EXPECT_LT(s.blocks_free, s.blocks_total);
  EXPECT_GT(s.arena_used, 0u);
}

TEST(Stats, AttachSeesSameFacility) {
  Config c;
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);
  LnvcId tx;
  ASSERT_EQ(f.open_send(0, "shared", &tx), Status::ok);
  Facility g = Facility::attach(region);
  EXPECT_TRUE(g.lnvc_exists("shared"));
  EXPECT_EQ(g.max_processes(), f.max_processes());
  EXPECT_EQ(g.block_payload(), f.block_payload());
  // Operations through the second handle act on the same state.
  int v = 5;
  ASSERT_EQ(g.send(0, tx, &v, sizeof(v)), Status::ok);
  EXPECT_EQ(f.queued(tx), 1u);
}

TEST(Coordination, BarrierSynchronizesThreadGroups) {
  for (const int n : {2, 3, 5, 8}) {
    Config c;
    c.max_lnvcs = 8;
    c.max_processes = 16;
    shm::HeapRegion region(c.derived_arena_bytes());
    Facility f = Facility::create(c, region);
    std::atomic<int> before{0};
    std::atomic<bool> violated{false};
    rt::run_group(rt::Backend::thread, n, [&](int rank) {
      before.fetch_add(1);
      apps::startup_barrier(f, static_cast<ProcessId>(rank), n, "t");
      if (before.load() != n) violated.store(true);
    });
    EXPECT_FALSE(violated.load()) << "n=" << n;
    EXPECT_EQ(f.lnvc_count(), 0u) << "barrier leaked LNVCs";
  }
}

TEST(Coordination, BarrierWithOffsetPids) {
  Config c;
  c.max_lnvcs = 8;
  c.max_processes = 16;
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);
  rt::run_group(rt::Backend::thread, 3, [&](int rank) {
    apps::startup_barrier(f, static_cast<ProcessId>(rank + 5), 3, "t",
                          /*base_pid=*/5);
  });
  EXPECT_EQ(f.lnvc_count(), 0u);
}

TEST(Coordination, SingleParticipantIsNoop) {
  Config c;
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);
  apps::startup_barrier(f, 0, 1, "solo");
  EXPECT_EQ(f.lnvc_count(), 0u);
}

}  // namespace
