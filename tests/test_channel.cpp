// SPSC channel (paper §5 future work): order, wraparound, blocking,
// truncation, and a two-thread stress run.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "mpf/core/channel.hpp"
#include "mpf/runtime/rng.hpp"

namespace {

using namespace mpf;

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> v(s.size());
  std::memcpy(v.data(), s.data(), s.size());
  return v;
}

struct ChannelTest : ::testing::Test {
  std::vector<std::byte> memory{std::vector<std::byte>(
      Channel::footprint(1024))};
  Channel ch{Channel::create(memory.data(), 1024)};
};

TEST_F(ChannelTest, RoundTripPreservesContentAndOrder) {
  ASSERT_TRUE(ch.send(bytes_of("first")));
  ASSERT_TRUE(ch.send(bytes_of("second, longer message")));
  std::vector<std::byte> buf(64);
  std::size_t len = ch.receive(buf);
  EXPECT_EQ(std::string(reinterpret_cast<char*>(buf.data()), len), "first");
  len = ch.receive(buf);
  EXPECT_EQ(std::string(reinterpret_cast<char*>(buf.data()), len),
            "second, longer message");
}

TEST_F(ChannelTest, ReadyAndTryReceive) {
  EXPECT_FALSE(ch.ready());
  std::vector<std::byte> buf(16);
  std::size_t len = 0;
  EXPECT_FALSE(ch.try_receive(buf, &len));
  ASSERT_TRUE(ch.send(bytes_of("x")));
  EXPECT_TRUE(ch.ready());
  EXPECT_TRUE(ch.try_receive(buf, &len));
  EXPECT_EQ(len, 1u);
  EXPECT_FALSE(ch.ready());
}

TEST_F(ChannelTest, ZeroLengthMessages) {
  ASSERT_TRUE(ch.send({}));
  std::vector<std::byte> buf(4);
  EXPECT_EQ(ch.receive(buf), 0u);
}

TEST_F(ChannelTest, OversizedMessageRejected) {
  std::vector<std::byte> big(600);  // > capacity/2 of the 1024 ring
  EXPECT_FALSE(ch.send(big));
}

TEST_F(ChannelTest, WraparoundManyTimes) {
  // Total traffic far exceeds the ring: cursors must wrap correctly.
  std::vector<std::byte> out(100);
  std::vector<std::byte> in(100);
  for (int i = 0; i < 500; ++i) {
    for (std::size_t b = 0; b < out.size(); ++b) {
      out[b] = static_cast<std::byte>((i + b) & 0xff);
    }
    ASSERT_TRUE(ch.send(out));
    ASSERT_EQ(ch.receive(in), out.size());
    ASSERT_EQ(in, out) << "iteration " << i;
  }
}

TEST_F(ChannelTest, AttachValidatesMagic) {
  Channel other = Channel::attach(memory.data());
  EXPECT_EQ(other.capacity(), ch.capacity());
  std::vector<std::byte> junk(Channel::footprint(64), std::byte{0});
  EXPECT_THROW((void)Channel::attach(junk.data()), std::invalid_argument);
}

TEST_F(ChannelTest, TruncationOnShortBuffer) {
  ASSERT_TRUE(ch.send(bytes_of("0123456789")));
  std::vector<std::byte> buf(4);
  std::size_t len = 0;
  ASSERT_TRUE(ch.try_receive(buf, &len));
  EXPECT_EQ(len, 4u);  // truncated copy
  EXPECT_FALSE(ch.ready());  // but the record was consumed
}

TEST(ChannelStress, ProducerConsumerThreads) {
  std::vector<std::byte> memory(Channel::footprint(1 << 12));
  Channel producer = Channel::create(memory.data(), 1 << 12);
  Channel consumer = Channel::attach(memory.data());
  constexpr int kMsgs = 20'000;
  std::thread consumer_thread([&] {
    std::vector<std::byte> buf(256);
    mpf::rt::SplitMix64 expect(42);
    for (int i = 0; i < kMsgs; ++i) {
      const std::size_t len = consumer.receive(buf);
      const std::size_t want_len = expect.below(200) + 4;
      ASSERT_EQ(len, want_len) << i;
      std::uint32_t tag = 0;
      std::memcpy(&tag, buf.data(), sizeof(tag));
      ASSERT_EQ(tag, static_cast<std::uint32_t>(i));
    }
  });
  mpf::rt::SplitMix64 rng(42);
  std::vector<std::byte> out(256);
  for (int i = 0; i < kMsgs; ++i) {
    const std::size_t len = rng.below(200) + 4;
    const auto tag = static_cast<std::uint32_t>(i);
    std::memcpy(out.data(), &tag, sizeof(tag));
    ASSERT_TRUE(producer.send(std::span(out.data(), len)));
  }
  consumer_thread.join();
}

}  // namespace

// --- simulated-mode coverage (appended) ---------------------------------
#include "mpf/sim/sim_platform.hpp"

namespace {

TEST(ChannelSim, PipelineUnderVirtualTime) {
  mpf::sim::Simulator simulator;
  mpf::sim::SimPlatform platform(simulator);
  std::vector<std::byte> memory(mpf::Channel::footprint(1 << 12));
  mpf::Channel producer = mpf::Channel::create(memory.data(), 1 << 12,
                                               platform);
  constexpr int kMsgs = 40;
  std::vector<int> got;
  simulator.spawn([&] {
    std::vector<std::byte> out(64, std::byte{1});
    for (int i = 0; i < kMsgs; ++i) {
      std::memcpy(out.data(), &i, sizeof(i));
      ASSERT_TRUE(producer.send(out));
    }
  });
  simulator.spawn([&] {
    mpf::Channel consumer = mpf::Channel::attach(memory.data(), platform);
    std::vector<std::byte> in(64);
    for (int i = 0; i < kMsgs; ++i) {
      ASSERT_EQ(consumer.receive(in), 64u);
      int v = -1;
      std::memcpy(&v, in.data(), sizeof(v));
      ASSERT_EQ(v, i);
    }
  });
  simulator.run();
  // The lock-free path must be far cheaper than the LNVC fixed cost:
  // 40 x 64B at ~1.3 ms/message vs ~6.4 ms via the general path.
  EXPECT_LT(simulator.elapsed(), 40ull * 4'000'000);
  EXPECT_GT(simulator.elapsed(), 0u);
}

TEST(ChannelSim, BackpressureBlocksProducerInVirtualTime) {
  mpf::sim::Simulator simulator;
  mpf::sim::SimPlatform platform(simulator);
  std::vector<std::byte> memory(mpf::Channel::footprint(256));
  mpf::Channel producer = mpf::Channel::create(memory.data(), 256, platform);
  mpf::sim::Time producer_done = 0;
  simulator.spawn([&] {
    std::vector<std::byte> out(100, std::byte{1});
    for (int i = 0; i < 6; ++i) ASSERT_TRUE(producer.send(out));
    producer_done = simulator.now();
  });
  simulator.spawn([&] {
    mpf::Channel consumer = mpf::Channel::attach(memory.data(), platform);
    simulator.advance(500'000'000);  // let the ring fill first
    std::vector<std::byte> in(128);
    for (int i = 0; i < 6; ++i) ASSERT_EQ(consumer.receive(in), 100u);
  });
  simulator.run();
  // The producer cannot finish before the consumer starts draining.
  EXPECT_GE(producer_done, 500'000'000u);
}

}  // namespace
