// Unit tests of the shared-memory free lists (the paper's init-time block
// carving mechanism).
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "mpf/shm/arena.hpp"
#include "mpf/shm/free_list.hpp"
#include "mpf/shm/region.hpp"

namespace {

using namespace mpf::shm;

struct FreeListFixture : ::testing::Test {
  HeapRegion region{1 << 20};
  Arena arena{Arena::create(region)};
  FreeList list;
};

TEST_F(FreeListFixture, CarveMakesAllNodesAvailable) {
  list.carve(arena, 32, 100);
  EXPECT_EQ(list.available(), 100u);
  EXPECT_EQ(list.capacity(), 100u);
  EXPECT_EQ(list.node_bytes(), 32u);
}

TEST_F(FreeListFixture, PopReturnsDistinctNodes) {
  list.carve(arena, 32, 50);
  std::set<Offset> seen;
  for (int i = 0; i < 50; ++i) {
    const Offset node = list.pop(arena);
    ASSERT_NE(node, kNullOffset);
    EXPECT_TRUE(seen.insert(node).second) << "duplicate node";
  }
  EXPECT_EQ(list.pop(arena), kNullOffset);  // empty
  EXPECT_EQ(list.available(), 0u);
}

TEST_F(FreeListFixture, PushRecycles) {
  list.carve(arena, 32, 4);
  const Offset a = list.pop(arena);
  (void)list.pop(arena);
  list.push(arena, a);
  EXPECT_EQ(list.available(), 3u);
  EXPECT_EQ(list.pop(arena), a);  // LIFO
}

TEST_F(FreeListFixture, PopChainDeliversExactlyRequested) {
  list.carve(arena, 32, 32);
  std::size_t got = 0;
  const Offset head = list.pop_chain(arena, 10, got);
  EXPECT_EQ(got, 10u);
  EXPECT_EQ(list.available(), 22u);
  // Chain is linked through first words and terminated.
  std::size_t count = 0;
  Offset cur = head;
  Offset last = kNullOffset;
  while (cur != kNullOffset) {
    ++count;
    last = cur;
    cur = *static_cast<Offset*>(arena.raw(cur));
  }
  EXPECT_EQ(count, 10u);
  list.push_chain(arena, head, last, 10);
  EXPECT_EQ(list.available(), 32u);
}

TEST_F(FreeListFixture, PopChainPartialWhenShort) {
  list.carve(arena, 32, 5);
  std::size_t got = 0;
  const Offset head = list.pop_chain(arena, 10, got);
  EXPECT_EQ(got, 5u);
  EXPECT_NE(head, kNullOffset);
  EXPECT_EQ(list.available(), 0u);
  std::size_t got2 = 0;
  EXPECT_EQ(list.pop_chain(arena, 3, got2), kNullOffset);
  EXPECT_EQ(got2, 0u);
}

TEST_F(FreeListFixture, PopChainZeroIsNoop) {
  list.carve(arena, 32, 5);
  std::size_t got = 77;
  EXPECT_EQ(list.pop_chain(arena, 0, got), kNullOffset);
  EXPECT_EQ(got, 0u);
  EXPECT_EQ(list.available(), 5u);
}

TEST_F(FreeListFixture, NodeTooSmallThrows) {
  EXPECT_THROW(list.carve(arena, 4, 10), std::invalid_argument);
  // Below the segment-metadata minimum (link word + {next, count, tail}).
  EXPECT_THROW(list.carve(arena, 24, 10), std::invalid_argument);
}

TEST_F(FreeListFixture, PopChainReportsTail) {
  list.carve(arena, 32, 16);
  std::size_t got = 0;
  Offset tail = kNullOffset;
  const Offset head = list.pop_chain(arena, 6, got, &tail);
  ASSERT_EQ(got, 6u);
  ASSERT_NE(head, kNullOffset);
  // The reported tail is the 6th node and is null-terminated: callers
  // never have to re-walk the chain to find its end.
  Offset cur = head;
  for (int i = 1; i < 6; ++i) cur = *static_cast<Offset*>(arena.raw(cur));
  EXPECT_EQ(cur, tail);
  EXPECT_EQ(*static_cast<Offset*>(arena.raw(tail)), kNullOffset);
  list.push_chain(arena, head, tail, 6);
  EXPECT_EQ(list.available(), 16u);
}

TEST_F(FreeListFixture, WholeSegmentsRoundTripWithoutWalking) {
  list.carve(arena, 32, 64);
  // Push back chains of the same size senders ask for, then pop them
  // again: each push_chain becomes one segment that pop_chain can take
  // whole, so repeated traffic at a fixed message size is O(1) per op.
  for (int round = 0; round < 100; ++round) {
    std::size_t got = 0;
    Offset tail = kNullOffset;
    const Offset head = list.pop_chain(arena, 8, got, &tail);
    ASSERT_EQ(got, 8u) << round;
    list.push_chain(arena, head, tail, 8);
  }
  EXPECT_EQ(list.available(), 64u);
  // Splitting a larger segment than requested still yields a valid chain.
  std::size_t got = 0;
  Offset tail = kNullOffset;
  const Offset head = list.pop_chain(arena, 3, got, &tail);
  ASSERT_EQ(got, 3u);
  std::size_t count = 0;
  for (Offset cur = head; cur != kNullOffset;
       cur = *static_cast<Offset*>(arena.raw(cur))) {
    ++count;
  }
  EXPECT_EQ(count, 3u);
  list.push_chain(arena, head, tail, 3);
  EXPECT_EQ(list.available(), 64u);
}

TEST_F(FreeListFixture, ConcurrentPopPushKeepsInventory) {
  constexpr std::size_t kNodes = 256;
  list.carve(arena, 32, kNodes);
  constexpr int kThreads = 6;
  constexpr int kRounds = 2000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kRounds; ++i) {
        const Offset node = list.pop(arena);
        if (node != kNullOffset) list.push(arena, node);
        std::size_t got = 0;
        const Offset head = list.pop_chain(arena, 5, got);
        if (got > 0) {
          Offset tail = head;
          for (std::size_t k = 1; k < got; ++k) {
            tail = *static_cast<Offset*>(arena.raw(tail));
          }
          list.push_chain(arena, head, tail, got);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(list.available(), kNodes);  // nothing lost, nothing duplicated
  std::set<Offset> seen;
  for (std::size_t i = 0; i < kNodes; ++i) {
    const Offset node = list.pop(arena);
    ASSERT_NE(node, kNullOffset);
    EXPECT_TRUE(seen.insert(node).second);
  }
}

}  // namespace
