// The Platform seam itself: native wait/notify behaviour and the exact
// virtual-time charges SimPlatform maps onto the machine model.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "mpf/core/platform.hpp"
#include "mpf/sim/sim_platform.hpp"

namespace {

using namespace mpf;

TEST(NativePlatform, LockIsASpinlock) {
  NativePlatform p;
  sync::SpinLock cell;
  p.lock(cell);
  EXPECT_TRUE(cell.is_locked());
  p.unlock(cell);
  EXPECT_FALSE(cell.is_locked());
}

TEST(NativePlatform, WaitReleasesLockAndWakesOnNotify) {
  NativePlatform p;
  sync::SpinLock mutex;
  sync::EventCount cond;
  std::atomic<bool> ready{false};
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    p.lock(mutex);
    ready.store(true);
    while (!woke.load()) {
      p.wait(mutex, cond);  // must release `mutex` while sleeping
      // (bounded poll: loop until the flag really flipped)
    }
    p.unlock(mutex);
  });
  while (!ready.load()) std::this_thread::yield();
  // If wait() failed to release the lock this would deadlock.
  p.lock(mutex);
  woke.store(true);
  p.unlock(mutex);
  p.notify_all(cond);
  waiter.join();
}

TEST(NativePlatform, ChargesAreNoOps) {
  NativePlatform p;
  const auto t0 = p.now_ns();
  p.charge_send_fixed();
  p.charge_copy(1 << 20, 1000);
  p.charge_flops(1e9);
  p.touch(1 << 20);
  const auto t1 = p.now_ns();
  EXPECT_LT(t1 - t0, 1'000'000u) << "native charges must cost ~nothing";
}

TEST(SimPlatform, ChargesMapToModelConstants) {
  sim::Simulator simulator;
  sim::SimPlatform platform(simulator);
  const sim::MachineModel& m = simulator.model();
  struct Point {
    const char* what;
    double expected;
  };
  simulator.spawn([&] {
    sim::Time before = simulator.now();
    platform.charge_send_fixed();
    EXPECT_EQ(simulator.now() - before,
              static_cast<sim::Time>(m.send_fixed_ns));
    before = simulator.now();
    platform.charge_recv_fixed();
    EXPECT_EQ(simulator.now() - before,
              static_cast<sim::Time>(m.recv_fixed_ns));
    before = simulator.now();
    platform.charge_check();
    EXPECT_EQ(simulator.now() - before, static_cast<sim::Time>(m.check_ns));
    before = simulator.now();
    platform.charge_flops(100);
    EXPECT_EQ(simulator.now() - before,
              static_cast<sim::Time>(100 * m.flop_ns));
    before = simulator.now();
    platform.charge_ops(100);
    EXPECT_EQ(simulator.now() - before,
              static_cast<sim::Time>(100 * m.op_ns));
    // Copy of L bytes through n blocks: L*copy + n*block (bus unloaded).
    before = simulator.now();
    platform.charge_copy(100, 10);
    EXPECT_EQ(simulator.now() - before,
              static_cast<sim::Time>(100 * m.copy_ns_per_byte +
                                     10 * m.block_overhead_ns));
  });
  simulator.run();
}

TEST(SimPlatform, FootprintDrivesPaging) {
  sim::Simulator simulator;
  sim::SimPlatform platform(simulator);
  simulator.spawn([&] {
    const sim::Time before = simulator.now();
    platform.touch(4096);
    EXPECT_EQ(simulator.now(), before) << "no pressure, no charge";
    platform.on_buffer_alloc(10 * simulator.model().resident_bytes);
    platform.touch(4096);
    EXPECT_GT(simulator.now(), before);
    platform.on_buffer_free(10 * simulator.model().resident_bytes);
    EXPECT_EQ(simulator.footprint(), 0u);
  });
  simulator.run();
  EXPECT_GT(simulator.page_faults(), 0u);
}

TEST(SimPlatform, OutsideSimulationFallsBackToNative) {
  sim::Simulator simulator;
  sim::SimPlatform platform(simulator);
  // Main-thread setup context: locks act on the real cell, charges vanish.
  sync::SpinLock cell;
  platform.lock(cell);
  EXPECT_TRUE(cell.is_locked());
  platform.unlock(cell);
  EXPECT_FALSE(cell.is_locked());
  platform.charge_send_fixed();  // no simulated process: ignored
  EXPECT_EQ(platform.now_ns(), 0u);
  EXPECT_STREQ(platform.name(), "balance21000-sim");
}

TEST(SimPlatform, LockTransfersVirtualTimeToWaiters) {
  sim::Simulator simulator;
  sim::SimPlatform platform(simulator);
  sync::SpinLock cell;
  sim::Time second_entry = 0;
  simulator.spawn([&] {
    platform.lock(cell);
    simulator.advance(1'000'000);  // hold for 1 ms
    platform.unlock(cell);
  });
  simulator.spawn([&] {
    simulator.advance(10);  // arrive just after the holder
    platform.lock(cell);
    second_entry = simulator.now();
    platform.unlock(cell);
  });
  simulator.run();
  EXPECT_GE(second_entry, 1'000'000u)
      << "waiter must inherit the holder's release time";
}

}  // namespace
