// Cannon's algorithm on the process mesh: correctness against the
// sequential product, mesh-size sweeps, and simulated speedup.
#include <gtest/gtest.h>

#include <vector>

#include "mpf/apps/cannon.hpp"
#include "mpf/runtime/group.hpp"
#include "mpf/shm/region.hpp"
#include "mpf/sim/sim_platform.hpp"

namespace {

using namespace mpf;
namespace cn = mpf::apps::cannon;

Config mesh_config(int mesh) {
  Config c;
  c.max_lnvcs = static_cast<std::uint32_t>(mesh * mesh * mesh * mesh + 64);
  c.max_processes = static_cast<std::uint32_t>(mesh * mesh + 2);
  c.connections = static_cast<std::size_t>(mesh) * mesh * mesh * mesh * 4 + 128;
  c.message_blocks = 1 << 15;
  return c;
}

TEST(Cannon, SequentialMultiplyIsCorrect) {
  cn::Problem p;
  p.n = 2;
  p.a = {1, 2, 3, 4};
  p.b = {5, 6, 7, 8};
  const auto c = cn::multiply_sequential(p);
  const std::vector<double> expected = {19, 22, 43, 50};
  EXPECT_LT(cn::max_abs_diff(c, expected), 1e-12);
}

class CannonMesh : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(CannonMesh, MatchesSequentialProduct) {
  const auto [n, mesh] = GetParam();
  const cn::Problem p = cn::random_problem(n, 100 + n);
  const auto expected = cn::multiply_sequential(p);

  const Config c = mesh_config(mesh);
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);
  std::vector<double> got;
  rt::run_group(rt::Backend::thread, mesh * mesh, [&](int rank) {
    auto mine = cn::worker(f, rank, mesh, p);
    if (rank == 0) got = std::move(mine);
  });
  ASSERT_EQ(got.size(), expected.size());
  EXPECT_LT(cn::max_abs_diff(got, expected), 1e-10)
      << "n=" << n << " mesh=" << mesh;
  EXPECT_EQ(f.lnvc_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Shapes, CannonMesh,
                         ::testing::Values(std::pair{4, 1}, std::pair{4, 2},
                                           std::pair{6, 2}, std::pair{6, 3},
                                           std::pair{12, 3},
                                           std::pair{12, 4}));

TEST(Cannon, IndivisibleMeshRejected) {
  const cn::Problem p = cn::random_problem(5, 1);
  const Config c = mesh_config(2);
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);
  EXPECT_THROW((void)cn::worker(f, 0, 2, p), std::invalid_argument);
}

TEST(Cannon, SimulatedMeshSpeedsUpLargeMatrices) {
  const int n = 24;
  const cn::Problem p = cn::random_problem(n, 7);
  auto mesh_seconds = [&](int mesh) {
    const Config c = mesh_config(mesh);
    sim::Simulator simulator;
    sim::SimPlatform platform(simulator);
    shm::HeapRegion region(c.derived_arena_bytes());
    Facility f = Facility::create(c, region, platform);
    simulator.spawn_group(mesh * mesh, [&](int rank) {
      (void)cn::worker(f, rank, mesh, p);
    });
    simulator.run();
    return static_cast<double>(simulator.elapsed());
  };
  auto seq_seconds = [&] {
    sim::Simulator simulator;
    sim::SimPlatform platform(simulator);
    simulator.spawn([&] { (void)cn::multiply_sequential(p, &platform); });
    simulator.run();
    return static_cast<double>(simulator.elapsed());
  };
  const double t1 = seq_seconds();
  const double t4 = mesh_seconds(2);
  const double t9 = mesh_seconds(3);
  EXPECT_GT(t1 / t4, 1.5) << "2x2 mesh must beat sequential on 24x24";
  EXPECT_GT(t1 / t9, t1 / t4 * 0.8)
      << "3x3 mesh should stay in the same league";
}

}  // namespace
