// Multi-circuit blocking receive (receive_any / select).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "mpf/core/facility.hpp"
#include "mpf/core/ports.hpp"
#include "mpf/shm/region.hpp"
#include "mpf/sim/sim_platform.hpp"

namespace {

using namespace mpf;

struct ReceiveAnyTest : ::testing::Test {
  Config config = [] {
    Config c;
    c.max_lnvcs = 8;
    c.max_processes = 8;
    return c;
  }();
  shm::HeapRegion region{config.derived_arena_bytes()};
  Facility f{Facility::create(config, region)};
};

TEST_F(ReceiveAnyTest, PicksWhicheverCircuitHasData) {
  LnvcId a_tx, b_tx, a_rx, b_rx;
  ASSERT_EQ(f.open_send(0, "a", &a_tx), Status::ok);
  ASSERT_EQ(f.open_send(0, "b", &b_tx), Status::ok);
  ASSERT_EQ(f.open_receive(1, "a", Protocol::fcfs, &a_rx), Status::ok);
  ASSERT_EQ(f.open_receive(1, "b", Protocol::fcfs, &b_rx), Status::ok);

  int v = 7;
  ASSERT_EQ(f.send(0, b_tx, &v, sizeof(v)), Status::ok);
  const LnvcId ids[] = {a_rx, b_rx};
  int got = 0;
  std::size_t len = 0, index = 99;
  ASSERT_EQ(f.receive_any(1, ids, &got, sizeof(got), &len, &index),
            Status::ok);
  EXPECT_EQ(index, 1u);
  EXPECT_EQ(got, 7);
  v = 8;
  ASSERT_EQ(f.send(0, a_tx, &v, sizeof(v)), Status::ok);
  ASSERT_EQ(f.receive_any(1, ids, &got, sizeof(got), &len, &index),
            Status::ok);
  EXPECT_EQ(index, 0u);
  EXPECT_EQ(got, 8);
}

TEST_F(ReceiveAnyTest, BlocksUntilAnyCircuitDelivers) {
  LnvcId a_rx, b_rx;
  ASSERT_EQ(f.open_receive(1, "a", Protocol::fcfs, &a_rx), Status::ok);
  ASSERT_EQ(f.open_receive(1, "b", Protocol::fcfs, &b_rx), Status::ok);
  std::thread sender([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    LnvcId tx;
    ASSERT_EQ(f.open_send(0, "b", &tx), Status::ok);
    int v = 42;
    ASSERT_EQ(f.send(0, tx, &v, sizeof(v)), Status::ok);
    ASSERT_EQ(f.close_send(0, tx), Status::ok);
  });
  const LnvcId ids[] = {a_rx, b_rx};
  int got = 0;
  std::size_t len = 0, index = 0;
  ASSERT_EQ(f.receive_any(1, ids, &got, sizeof(got), &len, &index),
            Status::ok);
  EXPECT_EQ(index, 1u);
  EXPECT_EQ(got, 42);
  sender.join();
}

TEST_F(ReceiveAnyTest, SingleIdDegeneratesToPlainReceive) {
  LnvcId tx, rx;
  ASSERT_EQ(f.open_send(0, "a", &tx), Status::ok);
  ASSERT_EQ(f.open_receive(1, "a", Protocol::fcfs, &rx), Status::ok);
  int v = 5;
  ASSERT_EQ(f.send(0, tx, &v, sizeof(v)), Status::ok);
  const LnvcId ids[] = {rx};
  int got = 0;
  std::size_t len = 0, index = 9;
  ASSERT_EQ(f.receive_any(1, ids, &got, sizeof(got), &len, &index),
            Status::ok);
  EXPECT_EQ(index, 0u);
}

TEST_F(ReceiveAnyTest, ErrorsPropagate) {
  int got = 0;
  std::size_t len = 0, index = 0;
  EXPECT_EQ(f.receive_any(1, {}, &got, sizeof(got), &len, &index),
            Status::invalid_argument);
  LnvcId tx;
  ASSERT_EQ(f.open_send(0, "a", &tx), Status::ok);
  const LnvcId ids[] = {tx};  // pid 1 holds no receive connection
  EXPECT_EQ(f.receive_any(1, ids, &got, sizeof(got), &len, &index),
            Status::not_connected);
}

TEST_F(ReceiveAnyTest, PortsWrapperWorks) {
  Participant consumer(f, 1);
  ReceivePort a = consumer.open_receive("a", Protocol::fcfs);
  ReceivePort b = consumer.open_receive("b", Protocol::broadcast);
  Participant producer(f, 0);
  SendPort tx = producer.open_send("b");
  tx.send("payload");
  ReceivePort* ports[] = {&a, &b};
  std::vector<std::byte> buf(32);
  const ReceivedAny r = receive_any(f, 1, ports, buf);
  EXPECT_EQ(r.index, 1u);
  EXPECT_EQ(r.length, 7u);
  EXPECT_FALSE(r.truncated);
}

TEST_F(ReceiveAnyTest, FanInFromManyProducers) {
  // One consumer multiplexing 4 producer circuits; every message arrives.
  constexpr int kProducers = 4;
  constexpr int kEach = 25;
  std::vector<LnvcId> rx(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    ASSERT_EQ(f.open_receive(7, "src" + std::to_string(p), Protocol::fcfs,
                             &rx[p]),
              Status::ok);
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      LnvcId tx;
      ASSERT_EQ(f.open_send(p, "src" + std::to_string(p), &tx), Status::ok);
      for (int i = 0; i < kEach; ++i) {
        const int v = p * 1000 + i;
        ASSERT_EQ(f.send(p, tx, &v, sizeof(v)), Status::ok);
      }
      ASSERT_EQ(f.close_send(p, tx), Status::ok);
    });
  }
  std::vector<int> per_source_next(kProducers, 0);
  for (int n = 0; n < kProducers * kEach; ++n) {
    int got = 0;
    std::size_t len = 0, index = 0;
    ASSERT_EQ(f.receive_any(7, rx, &got, sizeof(got), &len, &index),
              Status::ok);
    const int src = got / 1000;
    EXPECT_EQ(static_cast<int>(index), src);
    EXPECT_EQ(got % 1000, per_source_next[src]) << "FIFO per source";
    ++per_source_next[src];
  }
  for (auto& t : producers) t.join();
}

TEST(ReceiveAnySim, WorksUnderTheSimulator) {
  Config c;
  c.max_lnvcs = 8;
  c.max_processes = 8;
  sim::Simulator simulator;
  sim::SimPlatform platform(simulator);
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region, platform);
  std::vector<int> got;
  simulator.spawn([&] {
    LnvcId rx_a, rx_b;
    ASSERT_EQ(f.open_receive(1, "a", Protocol::fcfs, &rx_a), Status::ok);
    ASSERT_EQ(f.open_receive(1, "b", Protocol::fcfs, &rx_b), Status::ok);
    const LnvcId ids[] = {rx_a, rx_b};
    for (int i = 0; i < 6; ++i) {
      int v = 0;
      std::size_t len = 0, index = 0;
      ASSERT_EQ(f.receive_any(1, ids, &v, sizeof(v), &len, &index),
                Status::ok);
      got.push_back(v);
    }
  });
  simulator.spawn([&] {
    LnvcId tx_a, tx_b;
    ASSERT_EQ(f.open_send(0, "a", &tx_a), Status::ok);
    ASSERT_EQ(f.open_send(0, "b", &tx_b), Status::ok);
    for (int i = 0; i < 3; ++i) {
      simulator.advance(5e6);
      int v = i;
      ASSERT_EQ(f.send(0, tx_a, &v, sizeof(v)), Status::ok);
      v = 100 + i;
      ASSERT_EQ(f.send(0, tx_b, &v, sizeof(v)), Status::ok);
    }
  });
  simulator.run();
  ASSERT_EQ(got.size(), 6u);
  std::multiset<int> all(got.begin(), got.end());
  for (const int v : {0, 1, 2, 100, 101, 102}) EXPECT_EQ(all.count(v), 1u);
}

TEST_F(ReceiveAnyTest, RotationCursorPersistsAcrossCallsForFairness) {
  // Two equally busy circuits: the scan cursor is kept per process across
  // receive_any calls, so deliveries must alternate instead of re-biasing
  // toward the first listed LNVC on every call.
  LnvcId a_tx, b_tx, a_rx, b_rx;
  ASSERT_EQ(f.open_send(0, "a", &a_tx), Status::ok);
  ASSERT_EQ(f.open_send(0, "b", &b_tx), Status::ok);
  ASSERT_EQ(f.open_receive(1, "a", Protocol::fcfs, &a_rx), Status::ok);
  ASSERT_EQ(f.open_receive(1, "b", Protocol::fcfs, &b_rx), Status::ok);
  for (int i = 0; i < 3; ++i) {
    int v = i;
    ASSERT_EQ(f.send(0, a_tx, &v, sizeof(v)), Status::ok);
    v = 100 + i;
    ASSERT_EQ(f.send(0, b_tx, &v, sizeof(v)), Status::ok);
  }
  const LnvcId ids[] = {a_rx, b_rx};
  std::vector<std::size_t> order;
  for (int i = 0; i < 6; ++i) {
    int v = 0;
    std::size_t len = 0, index = 99;
    ASSERT_EQ(f.receive_any(1, ids, &v, sizeof(v), &len, &index), Status::ok);
    order.push_back(index);
  }
  const std::vector<std::size_t> want = {0, 1, 0, 1, 0, 1};
  EXPECT_EQ(order, want);
  // Each circuit's own FIFO order was preserved while alternating.
}

}  // namespace
