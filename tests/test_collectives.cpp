// Collectives over MPF circuits: every operation, swept over group sizes,
// on native threads and under the simulator.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpf/coll/collectives.hpp"
#include "mpf/runtime/group.hpp"
#include "mpf/shm/region.hpp"
#include "mpf/sim/sim_platform.hpp"

namespace {

using namespace mpf;
using coll::Communicator;
using coll::Op;

Config coll_config(int size) {
  Config c;
  c.max_lnvcs = static_cast<std::uint32_t>(size * size + 4 * size + 8);
  c.max_processes = static_cast<std::uint32_t>(size + 2);
  c.connections = static_cast<std::size_t>(size) * size * 4 + 64;
  return c;
}

class CollectiveSize : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSize, AllOperationsAgree) {
  const int size = GetParam();
  const Config c = coll_config(size);
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);

  rt::run_group(rt::Backend::thread, size, [&](int rank) {
    Communicator comm(f, rank, size, "t");
    ASSERT_EQ(comm.rank(), rank);
    ASSERT_EQ(comm.size(), size);

    // broadcast from every root in turn
    for (int root = 0; root < size; ++root) {
      int v = rank == root ? 100 + root : -1;
      comm.broadcast(&v, sizeof(v), root);
      EXPECT_EQ(v, 100 + root) << "rank " << rank << " root " << root;
    }

    // gather to rank 0
    const double mine = 1.5 * rank;
    std::vector<double> all(size, -1);
    comm.gather(&mine, sizeof(mine), all.data(), 0);
    if (rank == 0) {
      for (int r = 0; r < size; ++r) EXPECT_DOUBLE_EQ(all[r], 1.5 * r);
    }

    // scatter from the last rank
    std::vector<int> chunks(size);
    std::iota(chunks.begin(), chunks.end(), 1000);
    int got = -1;
    comm.scatter(chunks.data(), sizeof(int), &got, size - 1);
    EXPECT_EQ(got, 1000 + rank);

    // reduce + allreduce
    const double contrib[2] = {static_cast<double>(rank + 1),
                               static_cast<double>(-rank)};
    double reduced[2] = {0, 0};
    comm.reduce(contrib, reduced, 2, Op::sum, 0);
    const double expect_sum = size * (size + 1) / 2.0;
    if (rank == 0) {
      EXPECT_DOUBLE_EQ(reduced[0], expect_sum);
      EXPECT_DOUBLE_EQ(reduced[1], -(size * (size - 1) / 2.0));
    }
    double mx[1] = {static_cast<double>(rank)};
    comm.allreduce(mx, mx, 1, Op::max);
    EXPECT_DOUBLE_EQ(mx[0], size - 1.0);
    double mn[1] = {static_cast<double>(rank)};
    comm.allreduce(mn, mn, 1, Op::min);
    EXPECT_DOUBLE_EQ(mn[0], 0.0);

    // alltoall: member i sends (i*size + j) to member j.
    std::vector<int> out(size), in(size);
    for (int j = 0; j < size; ++j) out[j] = rank * size + j;
    comm.alltoall(out.data(), sizeof(int), in.data());
    for (int i = 0; i < size; ++i) EXPECT_EQ(in[i], i * size + rank);

    // repeated barriers stay in phase
    for (int i = 0; i < 5; ++i) comm.barrier();
  });
  EXPECT_EQ(f.lnvc_count(), 0u) << "communicators must clean up";
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectiveSize, ::testing::Values(1, 2, 3, 5, 8));

TEST(Collectives, PointToPointIsFifoPerPair) {
  const Config c = coll_config(3);
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);
  rt::run_group(rt::Backend::thread, 3, [&](int rank) {
    Communicator comm(f, rank, 3, "p2p");
    if (rank == 0) {
      for (int i = 0; i < 20; ++i) {
        comm.send(1, &i, sizeof(i));
        const int j = i + 1000;
        comm.send(2, &j, sizeof(j));
      }
    } else {
      for (int i = 0; i < 20; ++i) {
        int v = -1;
        ASSERT_EQ(comm.recv(0, &v, sizeof(v)), sizeof(int));
        ASSERT_EQ(v, rank == 1 ? i : i + 1000);
      }
    }
    comm.barrier();
  });
}

TEST(Collectives, SelfSendRejected) {
  const Config c = coll_config(2);
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);
  rt::run_group(rt::Backend::thread, 2, [&](int rank) {
    Communicator comm(f, rank, 2, "self");
    if (rank == 0) {
      int v = 0;
      EXPECT_THROW(comm.send(0, &v, sizeof(v)), std::invalid_argument);
    }
    comm.barrier();
  });
}

TEST(Collectives, BadRankRejected) {
  const Config c = coll_config(2);
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);
  EXPECT_THROW(Communicator(f, 2, 2, "bad"), std::invalid_argument);
  EXPECT_THROW(Communicator(f, 0, 0, "bad"), std::invalid_argument);
}

TEST(Collectives, WorkUnderSimulatorWithVirtualCosts) {
  const int size = 4;
  const Config c = coll_config(size);
  sim::Simulator simulator;
  sim::SimPlatform platform(simulator);
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region, platform);
  std::vector<double> results(size, 0);
  simulator.spawn_group(size, [&](int rank) {
    Communicator comm(f, rank, size, "sim");
    double v[1] = {1.0 * (rank + 1)};
    comm.allreduce(v, v, 1, Op::sum);
    results[rank] = v[0];
    comm.barrier();
  });
  simulator.run();
  for (int r = 0; r < size; ++r) EXPECT_DOUBLE_EQ(results[r], 10.0);
  EXPECT_GT(simulator.elapsed(), 0u);
}

TEST(Collectives, TwoCommunicatorsCoexist) {
  const Config c = coll_config(4);
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);
  rt::run_group(rt::Backend::thread, 4, [&](int rank) {
    Communicator world(f, rank, 4, "world");
    // A second communicator over the same processes, different tag.
    Communicator other(f, rank, 4, "other");
    int v = rank == 0 ? 5 : 0;
    world.broadcast(&v, sizeof(v), 0);
    int w = rank == 3 ? 9 : 0;
    other.broadcast(&w, sizeof(w), 3);
    EXPECT_EQ(v, 5);
    EXPECT_EQ(w, 9);
    world.barrier();
    other.barrier();
  });
}

}  // namespace
