// Cross-process MPF: the paper's actual deployment model — Unix processes
// sharing a mapped region.  Exercises both the fork-inherited anonymous
// mapping and a named POSIX segment attached at a different address.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "mpf/core/facility.hpp"
#include "mpf/runtime/group.hpp"
#include "mpf/shm/region.hpp"

namespace {

using namespace mpf;

Config fork_config() {
  Config c;
  c.max_lnvcs = 8;
  c.max_processes = 8;
  c.block_payload = 10;
  c.message_blocks = 4096;
  return c;
}

TEST(Fork, PingPongAcrossFork) {
  const Config c = fork_config();
  shm::AnonSharedRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);

  LnvcId ping, pong;
  ASSERT_EQ(f.open_send(0, "ping", &ping), Status::ok);
  ASSERT_EQ(f.open_receive(0, "pong", Protocol::fcfs, &pong), Status::ok);

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: echo 50 increments back.
    int code = 0;
    LnvcId crx, ctx;
    if (f.open_receive(1, "ping", Protocol::fcfs, &crx) != Status::ok ||
        f.open_send(1, "pong", &ctx) != Status::ok) {
      _exit(10);
    }
    for (int i = 0; i < 50 && code == 0; ++i) {
      int v = 0;
      std::size_t len = 0;
      if (f.receive(1, crx, &v, sizeof(v), &len) != Status::ok) code = 11;
      ++v;
      if (f.send(1, ctx, &v, sizeof(v)) != Status::ok) code = 12;
    }
    _exit(code);
  }
  for (int i = 0; i < 50; ++i) {
    int v = i * 3;
    ASSERT_EQ(f.send(0, ping, &v, sizeof(v)), Status::ok);
    int back = 0;
    std::size_t len = 0;
    ASSERT_EQ(f.receive(0, pong, &back, sizeof(back), &len), Status::ok);
    EXPECT_EQ(back, i * 3 + 1);
  }
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "child exit " << WEXITSTATUS(status);
}

TEST(Fork, PreloadedBacklogConsumedByForkedPool) {
  const Config c = fork_config();
  shm::AnonSharedRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);
  LnvcId jobs, results;
  ASSERT_EQ(f.open_send(0, "jobs", &jobs), Status::ok);
  ASSERT_EQ(f.open_receive(0, "results", Protocol::fcfs, &results),
            Status::ok);
  constexpr int kWorkers = 4;
  constexpr int kJobs = 40;
  for (int j = 0; j < kJobs; ++j) {
    ASSERT_EQ(f.send(0, jobs, &j, sizeof(j)), Status::ok);
  }
  const int poison = -1;
  for (int w = 0; w < kWorkers; ++w) {
    ASSERT_EQ(f.send(0, jobs, &poison, sizeof(poison)), Status::ok);
  }
  rt::run_group(rt::Backend::fork, kWorkers, [&](int rank) {
    const auto pid = static_cast<ProcessId>(rank + 1);
    LnvcId in, out;
    ASSERT_EQ(f.open_receive(pid, "jobs", Protocol::fcfs, &in), Status::ok);
    ASSERT_EQ(f.open_send(pid, "results", &out), Status::ok);
    for (;;) {
      int v = 0;
      std::size_t len = 0;
      ASSERT_EQ(f.receive(pid, in, &v, sizeof(v), &len), Status::ok);
      if (v < 0) break;
      const int r = v * v;
      ASSERT_EQ(f.send(pid, out, &r, sizeof(r)), Status::ok);
    }
  });
  // Every job answered exactly once (across process boundaries).
  std::multiset<int> got;
  for (int j = 0; j < kJobs; ++j) {
    int v = 0;
    std::size_t len = 0;
    ASSERT_EQ(f.receive(0, results, &v, sizeof(v), &len), Status::ok);
    got.insert(v);
  }
  for (int j = 0; j < kJobs; ++j) EXPECT_EQ(got.count(j * j), 1u) << j;
}

TEST(Fork, SigkilledChildIsReapedAndBlocksRecovered) {
  // The crash the recovery subsystem exists for: a worker process dies by
  // SIGKILL at an arbitrary instruction — possibly mid-send, holding
  // arena locks and pool blocks — and a survivor sweeps up after it.
  Config c = fork_config();
  c.suspicion_ns = 20'000'000;  // 20 ms: keep native seizure waits short
  shm::AnonSharedRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);

  LnvcId rx = kInvalidLnvc;
  ASSERT_EQ(f.open_receive(0, "victim.out", Protocol::fcfs, &rx),
            Status::ok);

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    LnvcId tx = kInvalidLnvc;
    if (f.open_send(1, "victim.out", &tx) != Status::ok) _exit(40);
    char payload[64] = {};
    for (unsigned i = 0;; ++i) {  // send until SIGKILLed
      if (f.send(1, tx, payload, sizeof(payload)) != Status::ok) _exit(41);
    }
  }
  // Let the child get deep into traffic, then kill it at a random point.
  char buf[64];
  std::size_t len = 0;
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(f.receive(0, rx, buf, sizeof(buf), &len), Status::ok);
  }
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);

  // The OS pid probe now reports the child dead; reap it.
  EXPECT_FALSE(f.process_alive(1));
  ASSERT_EQ(f.reap(0, 1), Status::ok);

  // Drain whatever the child had fully linked before dying, then the
  // orphaned-circuit verdict; no call may hang.
  Status s = Status::ok;
  for (int i = 0; i < 100000 && s == Status::ok; ++i) {
    s = f.receive(0, rx, buf, sizeof(buf), &len);
  }
  EXPECT_EQ(s, Status::lnvc_orphaned);

  // Conservation: everything the dead child held — magazine, in-flight
  // chains, journaled blocks — is back in circulation.
  const BlockAudit audit = f.block_audit();
  EXPECT_TRUE(audit.consistent());
  EXPECT_EQ(audit.in_flight(), 0u);
  const FacilityStats stats = f.stats();
  EXPECT_GE(stats.reaps, 1u);
  EXPECT_GE(stats.reaped_connections, 1u);
}

TEST(Fork, PosixShmAttachAtDifferentAddress) {
  const std::string name = "/mpf_fork_test_" + std::to_string(getpid());
  const Config c = fork_config();
  auto region = shm::PosixShmRegion::create(name, c.derived_arena_bytes());
  Facility f = Facility::create(c, *region);
  LnvcId tx;
  ASSERT_EQ(f.open_send(0, "wire", &tx), Status::ok);
  const char msg[] = "crossing address spaces";
  ASSERT_EQ(f.send(0, tx, msg, sizeof(msg)), Status::ok);

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Attach the segment *fresh*, at whatever address mmap picks: the
    // offset-based structures must still resolve.
    int code = 0;
    try {
      auto mine = shm::PosixShmRegion::attach(name);
      Facility g = Facility::attach(*mine);
      LnvcId rx;
      if (g.open_receive(1, "wire", Protocol::fcfs, &rx) != Status::ok) {
        code = 20;
      } else {
        char buf[64] = {};
        std::size_t len = 0;
        if (g.receive(1, rx, buf, sizeof(buf), &len) != Status::ok ||
            std::strcmp(buf, msg) != 0) {
          code = 21;
        }
      }
    } catch (...) {
      code = 22;
    }
    _exit(code);
  }
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "child exit " << WEXITSTATUS(status);
}

}  // namespace
