// Resource management: block recycling, pool exhaustion policies, the
// reclaim_broadcast_only option, and descriptor pool limits.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "mpf/core/facility.hpp"
#include "mpf/shm/region.hpp"

namespace {

using namespace mpf;

Config tiny_config(BlockPolicy policy, bool reclaim_bo = true) {
  Config c;
  c.max_lnvcs = 4;
  c.max_processes = 4;
  c.block_payload = 10;
  c.message_blocks = 8;  // deliberately tiny
  c.message_headers = 8;
  c.block_policy = policy;
  c.reclaim_broadcast_only = reclaim_bo;
  return c;
}

TEST(LnvcResources, SteadyStateTrafficRecyclesBlocks) {
  const Config c = tiny_config(BlockPolicy::fail);
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);
  LnvcId tx, rx;
  ASSERT_EQ(f.open_send(0, "q", &tx), Status::ok);
  ASSERT_EQ(f.open_receive(1, "q", Protocol::fcfs, &rx), Status::ok);
  // 8 blocks; each 32-byte message needs 4.  Thousands of round trips
  // must work because receive recycles.
  char buf[32] = {};
  for (int i = 0; i < 2000; ++i) {
    ASSERT_EQ(f.send(0, tx, buf, sizeof(buf)), Status::ok) << i;
    std::size_t len = 0;
    ASSERT_EQ(f.receive(1, rx, buf, sizeof(buf), &len), Status::ok);
  }
  EXPECT_EQ(f.stats().blocks_free, c.message_blocks);
}

TEST(LnvcResources, FailPolicyReportsExhaustion) {
  const Config c = tiny_config(BlockPolicy::fail);
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);
  LnvcId tx, rx;
  ASSERT_EQ(f.open_send(0, "q", &tx), Status::ok);
  ASSERT_EQ(f.open_receive(1, "q", Protocol::fcfs, &rx), Status::ok);
  char buf[40] = {};  // 4 blocks per message
  ASSERT_EQ(f.send(0, tx, buf, sizeof(buf)), Status::ok);
  ASSERT_EQ(f.send(0, tx, buf, sizeof(buf)), Status::ok);
  EXPECT_EQ(f.send(0, tx, buf, sizeof(buf)), Status::out_of_blocks);
  // Draining one message frees enough to send again.
  std::size_t len = 0;
  ASSERT_EQ(f.receive(1, rx, buf, sizeof(buf), &len), Status::ok);
  EXPECT_EQ(f.send(0, tx, buf, sizeof(buf)), Status::ok);
}

TEST(LnvcResources, WaitPolicyBlocksUntilBlocksReturn) {
  const Config c = tiny_config(BlockPolicy::wait);
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);
  LnvcId tx, rx;
  ASSERT_EQ(f.open_send(0, "q", &tx), Status::ok);
  ASSERT_EQ(f.open_receive(1, "q", Protocol::fcfs, &rx), Status::ok);
  char buf[40] = {};
  ASSERT_EQ(f.send(0, tx, buf, sizeof(buf)), Status::ok);
  ASSERT_EQ(f.send(0, tx, buf, sizeof(buf)), Status::ok);
  std::thread drainer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::size_t len = 0;
    ASSERT_EQ(f.receive(1, rx, buf, sizeof(buf), &len), Status::ok);
  });
  // Blocks until the drainer recycles a message's blocks.
  EXPECT_EQ(f.send(0, tx, buf, sizeof(buf)), Status::ok);
  drainer.join();
}

TEST(LnvcResources, RetainModeKeepsBroadcastHistoryForLateFcfs) {
  const Config c = tiny_config(BlockPolicy::fail, /*reclaim_bo=*/false);
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);
  LnvcId tx, bc;
  ASSERT_EQ(f.open_send(0, "b", &tx), Status::ok);
  ASSERT_EQ(f.open_receive(1, "b", Protocol::broadcast, &bc), Status::ok);
  int v = 11;
  ASSERT_EQ(f.send(0, tx, &v, sizeof(v)), Status::ok);
  std::size_t len = 0;
  ASSERT_EQ(f.receive(1, bc, &v, sizeof(v), &len), Status::ok);
  // Fully broadcast-read, but retained: a late FCFS joiner still gets it.
  LnvcId fc;
  ASSERT_EQ(f.open_receive(2, "b", Protocol::fcfs, &fc), Status::ok);
  int got = 0;
  ASSERT_EQ(f.receive(2, fc, &got, sizeof(got), &len), Status::ok);
  EXPECT_EQ(got, 11);
}

TEST(LnvcResources, EagerModeReclaimsBroadcastOnlyMessages) {
  const Config c = tiny_config(BlockPolicy::fail, /*reclaim_bo=*/true);
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);
  LnvcId tx, bc;
  ASSERT_EQ(f.open_send(0, "b", &tx), Status::ok);
  ASSERT_EQ(f.open_receive(1, "b", Protocol::broadcast, &bc), Status::ok);
  // With only 8 blocks, streaming 100 single-block messages through one
  // broadcast receiver proves reclamation happens on the fly.
  for (int i = 0; i < 100; ++i) {
    int v = i;
    ASSERT_EQ(f.send(0, tx, &v, sizeof(v)), Status::ok) << i;
    std::size_t len = 0;
    int got = -1;
    ASSERT_EQ(f.receive(1, bc, &got, sizeof(got), &len), Status::ok);
    EXPECT_EQ(got, i);
  }
  EXPECT_EQ(f.stats().blocks_free, c.message_blocks);
}

TEST(LnvcResources, ConnectionPoolExhaustionIsReported) {
  Config c = tiny_config(BlockPolicy::fail);
  c.connections = 3;
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);
  LnvcId id;
  ASSERT_EQ(f.open_send(0, "a", &id), Status::ok);
  ASSERT_EQ(f.open_send(1, "a", &id), Status::ok);
  ASSERT_EQ(f.open_send(2, "a", &id), Status::ok);
  EXPECT_EQ(f.open_send(3, "a", &id), Status::table_full);
  // Closing one frees a descriptor.
  ASSERT_EQ(f.close_send(2, 0), Status::ok);
  EXPECT_EQ(f.open_send(3, "a", &id), Status::ok);
}

TEST(LnvcResources, HeaderPoolIsAlsoRecycled) {
  Config c = tiny_config(BlockPolicy::fail);
  c.message_headers = 2;
  c.message_blocks = 64;
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);
  LnvcId tx, rx;
  ASSERT_EQ(f.open_send(0, "q", &tx), Status::ok);
  ASSERT_EQ(f.open_receive(1, "q", Protocol::fcfs, &rx), Status::ok);
  char buf[8] = {};
  std::size_t len = 0;
  ASSERT_EQ(f.send(0, tx, buf, 4), Status::ok);
  ASSERT_EQ(f.send(0, tx, buf, 4), Status::ok);
  EXPECT_EQ(f.send(0, tx, buf, 4), Status::out_of_blocks);  // headers gone
  ASSERT_EQ(f.receive(1, rx, buf, sizeof(buf), &len), Status::ok);
  EXPECT_EQ(f.send(0, tx, buf, 4), Status::ok);
}

}  // namespace
