// Resource management: block recycling, pool exhaustion policies, the
// reclaim_broadcast_only option, and descriptor pool limits.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "mpf/core/facility.hpp"
#include "mpf/shm/region.hpp"

namespace {

using namespace mpf;

Config tiny_config(BlockPolicy policy, bool reclaim_bo = true) {
  Config c;
  c.max_lnvcs = 4;
  c.max_processes = 4;
  c.block_payload = 10;
  c.message_blocks = 8;  // deliberately tiny
  c.message_headers = 8;
  c.block_policy = policy;
  c.reclaim_broadcast_only = reclaim_bo;
  return c;
}

TEST(LnvcResources, SteadyStateTrafficRecyclesBlocks) {
  const Config c = tiny_config(BlockPolicy::fail);
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);
  LnvcId tx, rx;
  ASSERT_EQ(f.open_send(0, "q", &tx), Status::ok);
  ASSERT_EQ(f.open_receive(1, "q", Protocol::fcfs, &rx), Status::ok);
  // 8 blocks; each 32-byte message needs 4.  Thousands of round trips
  // must work because receive recycles.
  char buf[32] = {};
  for (int i = 0; i < 2000; ++i) {
    ASSERT_EQ(f.send(0, tx, buf, sizeof(buf)), Status::ok) << i;
    std::size_t len = 0;
    ASSERT_EQ(f.receive(1, rx, buf, sizeof(buf), &len), Status::ok);
  }
  EXPECT_EQ(f.stats().blocks_free, c.message_blocks);
}

TEST(LnvcResources, FailPolicyReportsExhaustion) {
  const Config c = tiny_config(BlockPolicy::fail);
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);
  LnvcId tx, rx;
  ASSERT_EQ(f.open_send(0, "q", &tx), Status::ok);
  ASSERT_EQ(f.open_receive(1, "q", Protocol::fcfs, &rx), Status::ok);
  char buf[40] = {};  // 4 blocks per message
  ASSERT_EQ(f.send(0, tx, buf, sizeof(buf)), Status::ok);
  ASSERT_EQ(f.send(0, tx, buf, sizeof(buf)), Status::ok);
  EXPECT_EQ(f.send(0, tx, buf, sizeof(buf)), Status::out_of_blocks);
  // Draining one message frees enough to send again.
  std::size_t len = 0;
  ASSERT_EQ(f.receive(1, rx, buf, sizeof(buf), &len), Status::ok);
  EXPECT_EQ(f.send(0, tx, buf, sizeof(buf)), Status::ok);
}

TEST(LnvcResources, WaitPolicyBlocksUntilBlocksReturn) {
  const Config c = tiny_config(BlockPolicy::wait);
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);
  LnvcId tx, rx;
  ASSERT_EQ(f.open_send(0, "q", &tx), Status::ok);
  ASSERT_EQ(f.open_receive(1, "q", Protocol::fcfs, &rx), Status::ok);
  char buf[40] = {};
  ASSERT_EQ(f.send(0, tx, buf, sizeof(buf)), Status::ok);
  ASSERT_EQ(f.send(0, tx, buf, sizeof(buf)), Status::ok);
  std::thread drainer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::size_t len = 0;
    ASSERT_EQ(f.receive(1, rx, buf, sizeof(buf), &len), Status::ok);
  });
  // Blocks until the drainer recycles a message's blocks.
  EXPECT_EQ(f.send(0, tx, buf, sizeof(buf)), Status::ok);
  drainer.join();
}

TEST(LnvcResources, RetainModeKeepsBroadcastHistoryForLateFcfs) {
  const Config c = tiny_config(BlockPolicy::fail, /*reclaim_bo=*/false);
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);
  LnvcId tx, bc;
  ASSERT_EQ(f.open_send(0, "b", &tx), Status::ok);
  ASSERT_EQ(f.open_receive(1, "b", Protocol::broadcast, &bc), Status::ok);
  int v = 11;
  ASSERT_EQ(f.send(0, tx, &v, sizeof(v)), Status::ok);
  std::size_t len = 0;
  ASSERT_EQ(f.receive(1, bc, &v, sizeof(v), &len), Status::ok);
  // Fully broadcast-read, but retained: a late FCFS joiner still gets it.
  LnvcId fc;
  ASSERT_EQ(f.open_receive(2, "b", Protocol::fcfs, &fc), Status::ok);
  int got = 0;
  ASSERT_EQ(f.receive(2, fc, &got, sizeof(got), &len), Status::ok);
  EXPECT_EQ(got, 11);
}

TEST(LnvcResources, EagerModeReclaimsBroadcastOnlyMessages) {
  const Config c = tiny_config(BlockPolicy::fail, /*reclaim_bo=*/true);
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);
  LnvcId tx, bc;
  ASSERT_EQ(f.open_send(0, "b", &tx), Status::ok);
  ASSERT_EQ(f.open_receive(1, "b", Protocol::broadcast, &bc), Status::ok);
  // With only 8 blocks, streaming 100 single-block messages through one
  // broadcast receiver proves reclamation happens on the fly.
  for (int i = 0; i < 100; ++i) {
    int v = i;
    ASSERT_EQ(f.send(0, tx, &v, sizeof(v)), Status::ok) << i;
    std::size_t len = 0;
    int got = -1;
    ASSERT_EQ(f.receive(1, bc, &got, sizeof(got), &len), Status::ok);
    EXPECT_EQ(got, i);
  }
  EXPECT_EQ(f.stats().blocks_free, c.message_blocks);
}

TEST(LnvcResources, ConcurrentSendersUnderFailPolicyLoseNothing) {
  // Two senders hammer a tiny pool under BlockPolicy::fail while two
  // receivers drain.  Senders retry on out_of_blocks; at the end every
  // message sent was delivered intact and every block is back in the pool.
  const Config c = tiny_config(BlockPolicy::fail);
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);
  constexpr int kMsgs = 300;
  std::vector<std::thread> threads;
  for (int p = 0; p < 2; ++p) {
    const std::string name = "f" + std::to_string(p);
    LnvcId tx, rx;
    ASSERT_EQ(f.open_send(p, name, &tx), Status::ok);
    ASSERT_EQ(f.open_receive(p + 2, name, Protocol::fcfs, &rx), Status::ok);
    threads.emplace_back([&f, tx, p] {
      char msg[40];
      std::memset(msg, 'a' + p, sizeof(msg));
      for (int i = 0; i < kMsgs; ++i) {
        Status s;
        while ((s = f.send(p, tx, msg, sizeof(msg))) ==
               Status::out_of_blocks) {
          std::this_thread::yield();
        }
        ASSERT_EQ(s, Status::ok);
      }
    });
    threads.emplace_back([&f, rx, p] {
      char msg[40];
      for (int i = 0; i < kMsgs; ++i) {
        std::size_t len = 0;
        ASSERT_EQ(f.receive(p + 2, rx, msg, sizeof(msg), &len), Status::ok);
        ASSERT_EQ(len, sizeof(msg));
        for (char ch : msg) ASSERT_EQ(ch, static_cast<char>('a' + p));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(f.stats().blocks_free, c.message_blocks);
  EXPECT_EQ(f.stats().sends, 2u * kMsgs);
}

TEST(LnvcResources, ConcurrentSendersUnderWaitPolicyAllComplete) {
  // Same contention, BlockPolicy::wait: senders sleep on the exhaustion
  // monitor instead of failing, and every send must still complete.
  const Config c = tiny_config(BlockPolicy::wait);
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);
  constexpr int kMsgs = 300;
  std::vector<std::thread> threads;
  for (int p = 0; p < 2; ++p) {
    const std::string name = "w" + std::to_string(p);
    LnvcId tx, rx;
    ASSERT_EQ(f.open_send(p, name, &tx), Status::ok);
    ASSERT_EQ(f.open_receive(p + 2, name, Protocol::fcfs, &rx), Status::ok);
    threads.emplace_back([&f, tx, p] {
      char msg[40];
      std::memset(msg, 'A' + p, sizeof(msg));
      for (int i = 0; i < kMsgs; ++i) {
        ASSERT_EQ(f.send(p, tx, msg, sizeof(msg)), Status::ok);
      }
    });
    threads.emplace_back([&f, rx, p] {
      char msg[40];
      for (int i = 0; i < kMsgs; ++i) {
        std::size_t len = 0;
        ASSERT_EQ(f.receive(p + 2, rx, msg, sizeof(msg), &len), Status::ok);
        ASSERT_EQ(len, sizeof(msg));
        for (char ch : msg) ASSERT_EQ(ch, static_cast<char>('A' + p));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(f.stats().blocks_free, c.message_blocks);
  // The pool (8 blocks, 4-block messages) forces real monitor waits.
  EXPECT_GT(f.stats().exhaustion_waits, 0u);
}

TEST(LnvcResources, ShardStealingLosesNoMessageAndDoublesNoBlock) {
  // Sharded pool, no magazines: senders homed on shards 0 and 1 while
  // frees land on the receivers' shards 2 and 3, so nearly every
  // allocation must steal.  Per-sender payload patterns prove no block is
  // ever handed to two messages; final inventory proves none leak.
  Config c = tiny_config(BlockPolicy::wait);
  c.pool_shards = 4;
  c.message_blocks = 16;
  c.message_headers = 8;
  c.per_process_cache = false;
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);
  constexpr int kMsgs = 400;
  std::vector<std::thread> threads;
  for (int p = 0; p < 2; ++p) {
    const std::string name = "s" + std::to_string(p);
    LnvcId tx, rx;
    ASSERT_EQ(f.open_send(p, name, &tx), Status::ok);
    ASSERT_EQ(f.open_receive(p + 2, name, Protocol::fcfs, &rx), Status::ok);
    threads.emplace_back([&f, tx, p] {
      for (int i = 0; i < kMsgs; ++i) {
        char msg[40];
        std::memset(msg, (p << 6) | (i & 0x3f), sizeof(msg));
        ASSERT_EQ(f.send(p, tx, msg, sizeof(msg)), Status::ok);
      }
    });
    threads.emplace_back([&f, rx, p] {
      for (int i = 0; i < kMsgs; ++i) {
        char msg[40] = {};
        std::size_t len = 0;
        ASSERT_EQ(f.receive(p + 2, rx, msg, sizeof(msg), &len), Status::ok);
        ASSERT_EQ(len, sizeof(msg));
        const char want = static_cast<char>((p << 6) | (i & 0x3f));
        for (char ch : msg) ASSERT_EQ(ch, want) << "p=" << p << " i=" << i;
      }
    });
  }
  for (auto& t : threads) t.join();
  const FacilityStats s = f.stats();
  EXPECT_EQ(s.blocks_free, c.message_blocks);
  EXPECT_EQ(s.sends, 2u * kMsgs);
  EXPECT_EQ(s.receives, 2u * kMsgs);
  EXPECT_GT(s.shard_steals, 0u);
  // Shard inventories individually intact (capacity conserved overall).
  std::size_t shard_free = 0;
  for (const auto& info : f.pool_shard_infos()) shard_free += info.free_blocks;
  EXPECT_EQ(shard_free, c.message_blocks);
}

TEST(LnvcResources, ConnectionPoolExhaustionIsReported) {
  Config c = tiny_config(BlockPolicy::fail);
  c.connections = 3;
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);
  LnvcId id;
  ASSERT_EQ(f.open_send(0, "a", &id), Status::ok);
  ASSERT_EQ(f.open_send(1, "a", &id), Status::ok);
  ASSERT_EQ(f.open_send(2, "a", &id), Status::ok);
  EXPECT_EQ(f.open_send(3, "a", &id), Status::table_full);
  // Closing one frees a descriptor.
  ASSERT_EQ(f.close_send(2, 0), Status::ok);
  EXPECT_EQ(f.open_send(3, "a", &id), Status::ok);
}

TEST(LnvcResources, HeaderPoolIsAlsoRecycled) {
  Config c = tiny_config(BlockPolicy::fail);
  c.message_headers = 2;
  c.message_blocks = 64;
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);
  LnvcId tx, rx;
  ASSERT_EQ(f.open_send(0, "q", &tx), Status::ok);
  ASSERT_EQ(f.open_receive(1, "q", Protocol::fcfs, &rx), Status::ok);
  char buf[8] = {};
  std::size_t len = 0;
  ASSERT_EQ(f.send(0, tx, buf, 4), Status::ok);
  ASSERT_EQ(f.send(0, tx, buf, 4), Status::ok);
  EXPECT_EQ(f.send(0, tx, buf, 4), Status::out_of_blocks);  // headers gone
  ASSERT_EQ(f.receive(1, rx, buf, sizeof(buf), &len), Status::ok);
  EXPECT_EQ(f.send(0, tx, buf, 4), Status::ok);
}

}  // namespace
