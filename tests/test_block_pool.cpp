// The sharded block-pool allocator: shard carving, magazine caching,
// cross-shard stealing, and magazine raids under exhaustion.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "mpf/core/facility.hpp"
#include "mpf/shm/region.hpp"

namespace {

using namespace mpf;

TEST(BlockPool, ResolvedDerivesShardCountAndCacheBound) {
  Config c;
  c.max_processes = 32;
  const Config r = c.resolved();
  EXPECT_EQ(r.pool_shards, 8u);  // next pow2 of 32/4
  EXPECT_GT(r.cache_blocks, 0u);
  // Tiny pools disable caching so exhaustion semantics stay exact.
  Config tiny;
  tiny.max_processes = 4;
  tiny.message_blocks = 8;
  tiny.message_headers = 8;
  const Config rt = tiny.resolved();
  EXPECT_EQ(rt.pool_shards, 1u);
  EXPECT_EQ(rt.cache_blocks, 0u);
  // Explicit shard counts round up to a power of two.
  Config odd;
  odd.pool_shards = 3;
  EXPECT_EQ(odd.resolved().pool_shards, 4u);
}

TEST(BlockPool, CarvingSplitsPoolsAcrossShards) {
  Config c;
  c.max_lnvcs = 4;
  c.max_processes = 4;
  c.pool_shards = 4;
  c.message_blocks = 10;  // uneven: shards get 3,3,2,2
  c.message_headers = 6;  // 2,2,1,1
  c.per_process_cache = false;
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);
  EXPECT_EQ(f.pool_shards(), 4u);
  const auto infos = f.pool_shard_infos();
  ASSERT_EQ(infos.size(), 4u);
  std::size_t blocks = 0, msgs = 0;
  for (const auto& s : infos) {
    blocks += s.free_blocks;
    msgs += s.free_msgs;
    EXPECT_EQ(s.free_blocks, s.block_capacity);
  }
  EXPECT_EQ(blocks, 10u);
  EXPECT_EQ(msgs, 6u);
  EXPECT_EQ(infos[0].block_capacity, 3u);
  EXPECT_EQ(infos[3].block_capacity, 2u);
  EXPECT_EQ(f.stats().blocks_free, 10u);
  EXPECT_EQ(f.stats().blocks_total, 10u);
}

TEST(BlockPool, MagazineServesSteadyTrafficWithoutShardLocks) {
  Config c;
  c.max_lnvcs = 4;
  c.max_processes = 4;
  c.message_blocks = 512;
  c.message_headers = 128;
  c.cache_blocks = 16;  // explicit so the magazine is definitely on
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);
  LnvcId tx, rx;
  ASSERT_EQ(f.open_send(0, "q", &tx), Status::ok);
  ASSERT_EQ(f.open_receive(1, "q", Protocol::fcfs, &rx), Status::ok);
  char buf[32] = {};
  for (int i = 0; i < 500; ++i) {
    ASSERT_EQ(f.send(0, tx, buf, sizeof(buf)), Status::ok);
    std::size_t len = 0;
    ASSERT_EQ(f.receive(1, rx, buf, sizeof(buf), &len), Status::ok);
  }
  const FacilityStats s = f.stats();
  // The sender's magazine (refilled in batches) must be serving the bulk
  // of the traffic: far fewer shard visits than allocations.
  EXPECT_GE(s.cache_hits, 300u);
  EXPECT_LE(s.cache_misses, 200u);
  EXPECT_GT(s.shard_lock_acquisitions, 0u);
  EXPECT_LT(s.shard_lock_acquisitions, 1000u);
  // Magazine contents still count as free blocks; nothing leaked.
  EXPECT_EQ(s.blocks_free, 512u);
  EXPECT_GT(s.blocks_cached, 0u);
  const auto caches = f.proc_cache_infos();
  ASSERT_FALSE(caches.empty());
}

TEST(BlockPool, DryShardStealsFromSiblings) {
  Config c;
  c.max_lnvcs = 4;
  c.max_processes = 4;
  c.pool_shards = 4;  // 4 blocks per shard
  c.message_blocks = 16;
  c.message_headers = 8;
  c.per_process_cache = false;
  c.block_policy = BlockPolicy::fail;
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);
  LnvcId tx, rx;
  ASSERT_EQ(f.open_send(0, "q", &tx), Status::ok);
  ASSERT_EQ(f.open_receive(1, "q", Protocol::fcfs, &rx), Status::ok);
  // 12 blocks is three shards' worth: process 0's home shard alone cannot
  // satisfy it, so the allocator must sweep siblings.
  std::vector<char> big(120);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<char>(i * 7 + 1);
  }
  ASSERT_EQ(f.send(0, tx, big.data(), big.size()), Status::ok);
  EXPECT_GT(f.stats().shard_steals, 0u);
  std::vector<char> got(big.size());
  std::size_t len = 0;
  ASSERT_EQ(f.receive(1, rx, got.data(), got.size(), &len), Status::ok);
  EXPECT_EQ(len, big.size());
  EXPECT_EQ(std::memcmp(big.data(), got.data(), big.size()), 0);
  // Every stolen block came back; none lost, none double-freed.
  EXPECT_EQ(f.stats().blocks_free, 16u);
}

TEST(BlockPool, ExhaustedSenderRaidsPeerMagazines) {
  Config c;
  c.max_lnvcs = 4;
  c.max_processes = 4;
  c.pool_shards = 1;
  c.message_blocks = 12;
  c.message_headers = 8;
  c.cache_blocks = 8;  // small pool, caching forced on
  c.block_policy = BlockPolicy::fail;
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);
  LnvcId tx, rx;
  ASSERT_EQ(f.open_send(0, "q", &tx), Status::ok);
  ASSERT_EQ(f.open_receive(1, "q", Protocol::fcfs, &rx), Status::ok);
  // Park blocks in process 1's magazine by having it free messages.
  char buf[40] = {};
  std::size_t len = 0;
  for (int i = 0; i < 2; ++i) {
    ASSERT_EQ(f.send(0, tx, buf, sizeof(buf)), Status::ok);
    ASSERT_EQ(f.receive(1, rx, buf, sizeof(buf), &len), Status::ok);
  }
  const auto caches = f.proc_cache_infos();
  bool parked = false;
  for (const auto& pc : caches) parked = parked || pc.blocks > 0;
  ASSERT_TRUE(parked);
  // A 100-byte message needs 10 of the 12 blocks: the shard alone cannot
  // supply them, so without raiding this send would fail.
  LnvcId tx2;
  ASSERT_EQ(f.open_send(2, "q", &tx2), Status::ok);
  std::vector<char> big(100, 'x');
  ASSERT_EQ(f.send(2, tx2, big.data(), big.size()), Status::ok);
  EXPECT_GE(f.stats().cache_raids, 1u);
  std::vector<char> got(big.size());
  ASSERT_EQ(f.receive(1, rx, got.data(), got.size(), &len), Status::ok);
  EXPECT_EQ(len, big.size());
  EXPECT_EQ(got, big);
  EXPECT_EQ(f.stats().blocks_free, 12u);
}

TEST(BlockPool, ConcurrentTrafficAcrossShardsStaysBalanced) {
  Config c;
  c.max_lnvcs = 8;
  c.max_processes = 4;
  c.pool_shards = 4;
  c.message_blocks = 64;
  c.message_headers = 32;
  c.per_process_cache = false;
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);
  constexpr int kPairs = 2;
  constexpr int kMsgs = 500;
  std::vector<std::thread> threads;
  for (int p = 0; p < kPairs; ++p) {
    const std::string name = "ch" + std::to_string(p);
    LnvcId tx, rx;
    ASSERT_EQ(f.open_send(p, name, &tx), Status::ok);
    ASSERT_EQ(f.open_receive(p + kPairs, name, Protocol::fcfs, &rx),
              Status::ok);
    threads.emplace_back([&f, tx, p] {
      std::vector<char> msg(40, static_cast<char>('A' + p));
      for (int i = 0; i < kMsgs; ++i) {
        ASSERT_EQ(f.send(p, tx, msg.data(), msg.size()), Status::ok);
      }
    });
    threads.emplace_back([&f, rx, p] {
      std::vector<char> msg(40);
      for (int i = 0; i < kMsgs; ++i) {
        std::size_t len = 0;
        ASSERT_EQ(f.receive(p + kPairs, rx, msg.data(), msg.size(), &len),
                  Status::ok);
        ASSERT_EQ(len, msg.size());
        for (char ch : msg) ASSERT_EQ(ch, static_cast<char>('A' + p));
      }
    });
  }
  for (auto& t : threads) t.join();
  const FacilityStats s = f.stats();
  EXPECT_EQ(s.blocks_free, 64u);
  EXPECT_EQ(s.sends, static_cast<std::uint64_t>(kPairs) * kMsgs);
}

}  // namespace
