// Timed receives: wall-clock deadlines natively, virtual-time deadlines
// under the simulator (where the timeout is exact and deterministic).
#include <gtest/gtest.h>

#include <thread>

#include "mpf/core/facility.hpp"
#include "mpf/core/ports.hpp"
#include "mpf/runtime/timer.hpp"
#include "mpf/shm/region.hpp"
#include "mpf/sim/sim_platform.hpp"

namespace {

using namespace mpf;

struct TimeoutTest : ::testing::Test {
  Config config = [] {
    Config c;
    c.max_lnvcs = 8;
    c.max_processes = 8;
    return c;
  }();
  shm::HeapRegion region{config.derived_arena_bytes()};
  Facility f{Facility::create(config, region)};
};

TEST_F(TimeoutTest, ExpiresWhenNothingArrives) {
  LnvcId rx;
  ASSERT_EQ(f.open_receive(0, "idle", Protocol::fcfs, &rx), Status::ok);
  char buf[8];
  std::size_t len = 0;
  rt::WallTimer timer;
  EXPECT_EQ(f.receive_for(0, rx, buf, sizeof(buf), &len, 30'000'000),
            Status::timed_out);
  const double waited = timer.elapsed_s();
  EXPECT_GE(waited, 0.025);
  EXPECT_LT(waited, 2.0);
}

TEST_F(TimeoutTest, DeliversWhenMessageArrivesInTime) {
  LnvcId rx;
  ASSERT_EQ(f.open_receive(0, "busy", Protocol::fcfs, &rx), Status::ok);
  std::thread sender([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    LnvcId tx;
    ASSERT_EQ(f.open_send(1, "busy", &tx), Status::ok);
    int v = 17;
    ASSERT_EQ(f.send(1, tx, &v, sizeof(v)), Status::ok);
    ASSERT_EQ(f.close_send(1, tx), Status::ok);
  });
  int got = 0;
  std::size_t len = 0;
  EXPECT_EQ(f.receive_for(0, rx, &got, sizeof(got), &len, 5'000'000'000ull),
            Status::ok);
  EXPECT_EQ(got, 17);
  sender.join();
}

TEST_F(TimeoutTest, ZeroTimeoutIsAPoll) {
  LnvcId tx, rx;
  ASSERT_EQ(f.open_send(0, "p", &tx), Status::ok);
  ASSERT_EQ(f.open_receive(1, "p", Protocol::fcfs, &rx), Status::ok);
  char buf[8];
  std::size_t len = 0;
  EXPECT_EQ(f.receive_for(1, rx, buf, sizeof(buf), &len, 0),
            Status::timed_out);
  int v = 3;
  ASSERT_EQ(f.send(0, tx, &v, sizeof(v)), Status::ok);
  EXPECT_EQ(f.receive_for(1, rx, buf, sizeof(buf), &len, 0), Status::ok);
}

TEST_F(TimeoutTest, PortWrapper) {
  Participant p(f, 0);
  ReceivePort rx = p.open_receive("w", Protocol::broadcast);
  std::vector<std::byte> buf(16);
  Received r{};
  EXPECT_FALSE(rx.receive_for(buf, 10'000'000, &r));
  Participant s(f, 1);
  SendPort tx = s.open_send("w");
  tx.send("hello");
  EXPECT_TRUE(rx.receive_for(buf, 10'000'000, &r));
  EXPECT_EQ(r.length, 5u);
}

TEST(TimeoutSim, VirtualDeadlineIsExact) {
  Config c;
  c.max_lnvcs = 8;
  c.max_processes = 8;
  sim::Simulator simulator;
  sim::SimPlatform platform(simulator);
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region, platform);
  sim::Time woke_at = 0;
  simulator.spawn([&] {
    LnvcId rx;
    ASSERT_EQ(f.open_receive(0, "t", Protocol::fcfs, &rx), Status::ok);
    char buf[8];
    std::size_t len = 0;
    const sim::Time start = simulator.now();
    ASSERT_EQ(f.receive_for(0, rx, buf, sizeof(buf), &len, 250'000'000),
              Status::timed_out);
    woke_at = simulator.now() - start;
  });
  simulator.run();
  // Deterministic: the requested interval plus the modeled fixed receive
  // cost (charged before the deadline starts) and lock reacquisition.
  EXPECT_GE(woke_at, 250'000'000u);
  EXPECT_LT(woke_at, 256'000'000u);
}

TEST(TimeoutSim, NotifyBeforeDeadlineWins) {
  Config c;
  c.max_lnvcs = 8;
  c.max_processes = 8;
  sim::Simulator simulator;
  sim::SimPlatform platform(simulator);
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region, platform);
  int got = 0;
  simulator.spawn([&] {
    LnvcId rx;
    ASSERT_EQ(f.open_receive(0, "t", Protocol::fcfs, &rx), Status::ok);
    std::size_t len = 0;
    ASSERT_EQ(f.receive_for(0, rx, &got, sizeof(got), &len, 1'000'000'000),
              Status::ok);
  });
  simulator.spawn([&] {
    simulator.advance(50'000'000);
    LnvcId tx;
    ASSERT_EQ(f.open_send(1, "t", &tx), Status::ok);
    int v = 88;
    ASSERT_EQ(f.send(1, tx, &v, sizeof(v)), Status::ok);
  });
  simulator.run();
  EXPECT_EQ(got, 88);
}

TEST(TimeoutSim, TimedSleepIsNotADeadlock) {
  // All processes asleep, but one with a deadline: the conductor must
  // promote it rather than declare deadlock.
  Config c;
  c.max_lnvcs = 8;
  c.max_processes = 8;
  sim::Simulator simulator;
  sim::SimPlatform platform(simulator);
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region, platform);
  simulator.spawn([&] {
    LnvcId rx;
    ASSERT_EQ(f.open_receive(0, "never", Protocol::fcfs, &rx), Status::ok);
    char buf[4];
    std::size_t len = 0;
    EXPECT_EQ(f.receive_for(0, rx, buf, sizeof(buf), &len, 10'000'000),
              Status::timed_out);
  });
  EXPECT_NO_THROW(simulator.run());
}

}  // namespace
