// Failure detection and recovery: robust locks that survive a dead
// holder, the reap() sweep (journal resolution, connection closure with
// last-connection semantics, block reclamation), the failure statuses
// blocked callers observe, and the close-vs-blocked-receive race on every
// backend (threads, fork, simulator).
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <thread>
#include <vector>

#include "mpf/core/facility.hpp"
#include "mpf/shm/region.hpp"
#include "mpf/sim/sim_platform.hpp"
#include "mpf/sim/trace.hpp"

namespace {

using namespace mpf;
using sim::SimPlatform;
using sim::Simulator;

Config small_config() {
  Config c;
  c.max_lnvcs = 8;
  c.max_processes = 8;
  c.block_payload = 10;
  c.message_blocks = 1024;
  c.suspicion_ns = 1'000'000;  // 1 ms
  return c;
}

struct SimFixture {
  Config config;
  Simulator sim;
  SimPlatform platform{sim};
  shm::HeapRegion region;
  Facility facility;

  explicit SimFixture(Config c = small_config())
      : config(c),
        region(c.derived_arena_bytes()),
        facility(Facility::create(c, region, platform)) {}
};

// ---- robust locks at the simulator level --------------------------------

TEST(RobustLock, WaiterSeizesFromDeadHolder) {
  Simulator sim;
  sim::Trace trace;
  sim.set_trace(&trace);
  sim::FaultPlan plan;
  sim::FaultAction kill;
  kill.kind = sim::FaultAction::Kind::kill_at_time;
  kill.process = 0;
  kill.at_ns = 500;
  plan.actions.push_back(kill);
  sim.set_fault_plan(plan);

  int cell = 0;  // any address works as a virtual mutex key
  bool seized = false;
  std::uint32_t seized_from = 0;
  sim.spawn([&] {
    sim.mutex_lock(&cell);
    sim.advance(10'000);  // the kill fires here, lock still held
    sim.mutex_unlock(&cell);
  });
  sim.spawn([&] {
    sim.advance(1'000);
    RobustOp op;
    op.tag = sync::SpinLock::tag_for(1);
    op.suspicion_ns = 2'000;
    op.alive = [](void*, std::uint32_t) { return false; };
    sim.mutex_lock_robust(&cell, op);
    seized = op.seized;
    seized_from = op.seized_from;
    sim.mutex_unlock(&cell);
  });
  sim.run();

  EXPECT_EQ(sim.kills(), 1u);
  EXPECT_FALSE(sim.process_alive(0));
  EXPECT_TRUE(sim.process_alive(1));
  EXPECT_TRUE(seized);
  EXPECT_EQ(sync::SpinLock::pid_of(seized_from), 0u);
  EXPECT_EQ(trace.count(sim::TraceKind::fault_injected), 1u);
  EXPECT_GE(trace.count(sim::TraceKind::recovery), 1u);
}

TEST(RobustLock, ZeroSuspicionNeverSeizes) {
  // suspicion_ns == 0 must behave like a plain lock: the waiter simply
  // waits (and is woken when the dying holder abandons the mutex — the
  // seizure happens only for suspecting waiters, so this one relies on the
  // next unlock).  Here the holder lives and unlocks normally.
  Simulator sim;
  int cell = 0;
  bool waiter_ran = false;
  sim.spawn([&] {
    sim.mutex_lock(&cell);
    sim.advance(5'000);
    sim.mutex_unlock(&cell);
  });
  sim.spawn([&] {
    sim.advance(100);
    RobustOp op;
    op.tag = sync::SpinLock::tag_for(1);
    op.suspicion_ns = 0;
    sim.mutex_lock_robust(&cell, op);
    EXPECT_FALSE(op.seized);
    waiter_ran = true;
    sim.mutex_unlock(&cell);
  });
  sim.run();
  EXPECT_TRUE(waiter_ran);
}

// ---- reap semantics (native, via declare_dead) --------------------------

TEST(Reap, ClosesConnectionsReturnsBlocksWakesReceiver) {
  const Config c = small_config();
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);

  LnvcId tx = kInvalidLnvc, rx = kInvalidLnvc;
  ASSERT_EQ(f.open_send(2, "wire", &tx), Status::ok);
  ASSERT_EQ(f.open_receive(0, "wire", Protocol::fcfs, &rx), Status::ok);
  const char payload[] = "dying breath";
  ASSERT_EQ(f.send(2, tx, payload, sizeof(payload)), Status::ok);

  // Simulate the death of process 2 (an external detector's verdict).
  f.declare_dead(2);
  EXPECT_FALSE(f.process_alive(2));
  ASSERT_EQ(f.reap(0, 2), Status::ok);

  const FacilityStats stats = f.stats();
  EXPECT_EQ(stats.reaps, 1u);
  EXPECT_GE(stats.reaped_connections, 1u);

  // The queued message survives the reap (it was fully linked)...
  char buf[32] = {};
  std::size_t len = 0;
  ASSERT_EQ(f.receive(0, rx, buf, sizeof(buf), &len), Status::ok);
  EXPECT_STREQ(buf, payload);
  // ...and with the last sender dead (not cleanly closed), a further
  // blocking receive reports the circuit orphaned instead of hanging.
  EXPECT_EQ(f.receive(0, rx, buf, sizeof(buf), &len),
            Status::lnvc_orphaned);

  const BlockAudit audit = f.block_audit();
  EXPECT_TRUE(audit.consistent());
  EXPECT_EQ(audit.in_flight(), 0u);
}

TEST(Reap, LastConnectionDeathDestroysLnvc) {
  const Config c = small_config();
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);

  LnvcId tx = kInvalidLnvc;
  ASSERT_EQ(f.open_send(3, "solo", &tx), Status::ok);
  const char payload[] = "unread";
  ASSERT_EQ(f.send(3, tx, payload, sizeof(payload)), Status::ok);
  ASSERT_TRUE(f.lnvc_exists("solo"));

  f.declare_dead(3);
  ASSERT_EQ(f.reap(0, 3), Status::ok);
  // Dead process held the only connection: the LNVC dies with it and its
  // queued message's blocks return to the pool.
  EXPECT_FALSE(f.lnvc_exists("solo"));
  const BlockAudit audit = f.block_audit();
  EXPECT_TRUE(audit.consistent());
  EXPECT_EQ(audit.in_flight(), 0u);
  EXPECT_EQ(audit.blocks_queued, 0u);
}

TEST(Reap, RejectsLiveProcessAndSelf) {
  const Config c = small_config();
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);
  LnvcId tx = kInvalidLnvc;
  ASSERT_EQ(f.open_send(1, "wire", &tx), Status::ok);
  EXPECT_EQ(f.reap(0, 1), Status::invalid_argument);  // alive
  EXPECT_EQ(f.reap(1, 1), Status::invalid_argument);  // self
  EXPECT_EQ(f.reap(0, 99), Status::invalid_argument);
  EXPECT_EQ(f.reap(0, 5), Status::ok);  // never participated: no-op
}

TEST(Reap, OrphanReportNamesDeadProcess) {
  const Config c = small_config();
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);
  LnvcId tx = kInvalidLnvc;
  ASSERT_EQ(f.open_send(2, "wire", &tx), Status::ok);
  f.declare_dead(2);
  bool found = false;
  for (const OrphanInfo& o : f.orphan_infos()) {
    if (o.pid == 2) {
      found = true;
      EXPECT_FALSE(o.os_alive);
      EXPECT_GE(o.connections, 1u);
    }
  }
  EXPECT_TRUE(found);
}

// ---- close racing a blocked receive (satellite: all three backends) -----

TEST(CloseRace, ThreadsBlockedReceiveSeesClosed) {
  const Config c = small_config();
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);

  LnvcId tx = kInvalidLnvc, rx = kInvalidLnvc;
  ASSERT_EQ(f.open_send(0, "race", &tx), Status::ok);
  ASSERT_EQ(f.open_receive(1, "race", Protocol::fcfs, &rx), Status::ok);

  std::atomic<bool> entered{false};
  Status got = Status::ok;
  std::thread receiver([&] {
    char buf[16];
    std::size_t len = 0;
    entered.store(true);
    got = f.receive(1, rx, buf, sizeof(buf), &len);
  });
  while (!entered.load()) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // Close the blocked receiver's own connection out from under it, then
  // the sender's (destroying the LNVC).
  ASSERT_EQ(f.close_receive(1, rx), Status::ok);
  ASSERT_EQ(f.close_send(0, tx), Status::ok);
  receiver.join();
  EXPECT_EQ(got, Status::closed);
}

TEST(CloseRace, ForkBlockedReceiveSeesClosed) {
  const Config c = small_config();
  shm::AnonSharedRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region);

  LnvcId tx = kInvalidLnvc, rx = kInvalidLnvc, ready_rx = kInvalidLnvc;
  ASSERT_EQ(f.open_send(0, "race", &tx), Status::ok);
  ASSERT_EQ(f.open_receive(1, "race", Protocol::fcfs, &rx), Status::ok);
  ASSERT_EQ(f.open_receive(0, "race.ready", Protocol::fcfs, &ready_rx),
            Status::ok);

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    LnvcId ready_tx = kInvalidLnvc;
    if (f.open_send(1, "race.ready", &ready_tx) != Status::ok) _exit(29);
    const int token = 1;
    if (f.send(1, ready_tx, &token, sizeof(token)) != Status::ok) _exit(29);
    char buf[16];
    std::size_t len = 0;
    const Status s = f.receive(1, rx, buf, sizeof(buf), &len);
    _exit(s == Status::closed ? 0 : 30 + static_cast<int>(s));
  }
  // Wait for the child's ready token, then give it a generous window to
  // travel the few instructions from that send into the blocked receive.
  int token = 0;
  std::size_t len = 0;
  ASSERT_EQ(f.receive(0, ready_rx, &token, sizeof(token), &len), Status::ok);
  ::usleep(50'000);
  ASSERT_EQ(f.close_receive(1, rx), Status::ok);
  ASSERT_EQ(f.close_send(0, tx), Status::ok);
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "child exit " << WEXITSTATUS(status);
}

TEST(CloseRace, SimBlockedReceiveSeesClosed) {
  SimFixture fx;
  LnvcId tx = kInvalidLnvc, rx = kInvalidLnvc;
  ASSERT_EQ(fx.facility.open_send(0, "race", &tx), Status::ok);
  ASSERT_EQ(fx.facility.open_receive(1, "race", Protocol::fcfs, &rx),
            Status::ok);
  Status got = Status::ok;
  fx.sim.spawn([&] {
    // Process 0 closes both ends while process 1 is parked in receive
    // (the receiver's fixed receive charge is ~3.1 ms of virtual time, so
    // close well after it has actually blocked).
    fx.sim.advance(20'000'000);
    ASSERT_EQ(fx.facility.close_receive(1, rx), Status::ok);
    ASSERT_EQ(fx.facility.close_send(0, tx), Status::ok);
  });
  fx.sim.spawn([&] {
    char buf[16];
    std::size_t len = 0;
    got = fx.facility.receive(1, rx, buf, sizeof(buf), &len);
  });
  fx.sim.run();
  EXPECT_EQ(got, Status::closed);
}

// ---- blocked receiver self-heals from a dead sender (sim) ---------------

TEST(Recovery, BlockedReceiverOrphanedWhenSenderDies) {
  SimFixture fx;
  sim::FaultPlan plan;
  sim::FaultAction kill;
  kill.kind = sim::FaultAction::Kind::kill_at_send;
  kill.process = 0;
  kill.count = 3;
  plan.actions.push_back(kill);
  fx.sim.set_fault_plan(plan);

  Status got = Status::ok;
  int delivered = 0;
  fx.sim.spawn([&] {
    LnvcId tx = kInvalidLnvc;
    ASSERT_EQ(fx.facility.open_send(0, "feed", &tx), Status::ok);
    const int v = 7;
    for (int i = 0; i < 10; ++i) {
      (void)fx.facility.send(0, tx, &v, sizeof(v));  // dies at the 3rd
    }
  });
  fx.sim.spawn([&] {
    LnvcId rx = kInvalidLnvc;
    ASSERT_EQ(fx.facility.open_receive(1, "feed", Protocol::fcfs, &rx),
              Status::ok);
    for (;;) {
      int v = 0;
      std::size_t len = 0;
      const Status s = fx.facility.receive(1, rx, &v, sizeof(v), &len);
      if (s != Status::ok) {
        got = s;
        break;
      }
      ++delivered;
    }
  });
  fx.sim.run();

  EXPECT_EQ(fx.sim.kills(), 1u);
  // Whatever was fully sent arrives; then the blocked receiver must not
  // hang — the suspicion probe finds the dead sender and reports the
  // circuit orphaned.
  EXPECT_EQ(got, Status::lnvc_orphaned);
  EXPECT_LE(delivered, 3);
  const FacilityStats stats = fx.facility.stats();
  EXPECT_GE(stats.reaps, 1u);
  EXPECT_GE(stats.orphaned_receives, 1u);
  const BlockAudit audit = fx.facility.block_audit();
  EXPECT_TRUE(audit.consistent());
}

}  // namespace
