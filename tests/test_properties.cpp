// Property-based tests over concurrent configurations: conservation and
// ordering invariants swept across sender/receiver/protocol/size mixes
// with real threads (parameterized gtest).
//
// Invariants checked, for every configuration:
//   P1 conservation (FCFS): every message is delivered to exactly one
//      FCFS receiver — none lost, none duplicated.
//   P2 conservation (BROADCAST): every joined-from-the-start broadcast
//      receiver sees every message exactly once.
//   P3 per-sender FIFO: every observer sees any given sender's messages
//      in that sender's send order.
//   P4 payload integrity: checksums survive block chaining.
//   P5 pool integrity: all blocks return to the free list afterwards.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <mutex>
#include <tuple>
#include <vector>

#include "mpf/apps/coordination.hpp"
#include "mpf/core/facility.hpp"
#include "mpf/core/ports.hpp"
#include "mpf/runtime/group.hpp"
#include "mpf/runtime/rng.hpp"
#include "mpf/shm/region.hpp"

namespace {

using namespace mpf;

struct Wire {
  std::uint32_t sender;
  std::uint32_t seq;
  std::uint32_t len;
  std::uint32_t checksum;
  // len payload bytes follow
};

std::uint32_t checksum(const std::byte* data, std::size_t len) {
  std::uint32_t h = 2166136261u;
  for (std::size_t i = 0; i < len; ++i) {
    h = (h ^ static_cast<std::uint32_t>(data[i])) * 16777619u;
  }
  return h;
}

// (senders, fcfs receivers, broadcast receivers, payload bytes)
using Shape = std::tuple<int, int, int, int>;

class ConservationProperty : public ::testing::TestWithParam<Shape> {};

TEST_P(ConservationProperty, AllInvariantsHold) {
  const auto [nsend, nfcfs, nbcast, payload] = GetParam();
  constexpr int kPerSender = 40;
  const int nprocs = nsend + nfcfs + nbcast;

  Config config;
  config.max_lnvcs = 8;
  config.max_processes = static_cast<std::uint32_t>(nprocs + 1);
  config.block_payload = 10;
  config.message_blocks = 1 << 14;
  shm::HeapRegion region(config.derived_arena_bytes());
  Facility f = Facility::create(config, region);

  struct Observation {
    std::vector<Wire> headers;
  };
  std::vector<Observation> fcfs_obs(std::max(nfcfs, 1));
  std::vector<Observation> bcast_obs(std::max(nbcast, 1));
  std::atomic<bool> integrity_ok{true};

  rt::run_group(rt::Backend::thread, nprocs, [&](int rank) {
    Participant self(f, static_cast<ProcessId>(rank));
    const bool is_sender = rank < nsend;
    const bool is_fcfs = !is_sender && rank < nsend + nfcfs;
    SendPort tx;
    ReceivePort rx;
    if (is_sender) {
      tx = self.open_send("prop");
    } else {
      rx = self.open_receive("prop",
                             is_fcfs ? Protocol::fcfs : Protocol::broadcast);
    }
    apps::startup_barrier(f, static_cast<ProcessId>(rank), nprocs, "join");

    if (is_sender) {
      rt::SplitMix64 rng(rank * 7919 + 13);
      std::vector<std::byte> msg(sizeof(Wire) + payload);
      for (int i = 0; i < kPerSender; ++i) {
        auto* w = reinterpret_cast<Wire*>(msg.data());
        w->sender = rank;
        w->seq = i;
        w->len = payload;
        std::byte* body = msg.data() + sizeof(Wire);
        for (int b = 0; b < payload; ++b) {
          body[b] = static_cast<std::byte>(rng.next() & 0xff);
        }
        w->checksum = checksum(body, payload);
        tx.send(msg);
      }
      // Poison for the FCFS pool: zero-length messages, one per receiver,
      // sent by sender 0 only after every sender finished.
      if (rank == 0) {
        apps::startup_barrier(f, 0, nsend, "senders-done", 0);
        for (int r = 0; r < nfcfs; ++r) tx.send(std::span<const std::byte>{});
      } else {
        apps::startup_barrier(f, static_cast<ProcessId>(rank), nsend,
                              "senders-done", 0);
      }
    } else if (is_fcfs) {
      std::vector<std::byte> buf(sizeof(Wire) + payload + 16);
      for (;;) {
        const Received r = rx.receive(buf);
        if (r.length == 0) break;
        const auto* w = reinterpret_cast<const Wire*>(buf.data());
        if (checksum(buf.data() + sizeof(Wire), w->len) != w->checksum) {
          integrity_ok.store(false);
        }
        fcfs_obs[rank - nsend].headers.push_back(*w);
      }
    } else {
      std::vector<std::byte> buf(sizeof(Wire) + payload + 16);
      const int expected = nsend * kPerSender;
      int seen = 0;
      while (seen < expected) {
        const Received r = rx.receive(buf);
        if (r.length == 0) continue;  // FCFS poison is invisible here? no:
        // broadcast receivers see every message, including poisons; skip.
        const auto* w = reinterpret_cast<const Wire*>(buf.data());
        if (checksum(buf.data() + sizeof(Wire), w->len) != w->checksum) {
          integrity_ok.store(false);
        }
        bcast_obs[rank - nsend - nfcfs].headers.push_back(*w);
        ++seen;
      }
    }
  });

  EXPECT_TRUE(integrity_ok.load()) << "P4 violated: payload corruption";

  if (nfcfs > 0) {
    // P1: exactly-once across the FCFS pool.
    std::map<std::pair<std::uint32_t, std::uint32_t>, int> counts;
    for (const auto& obs : fcfs_obs) {
      for (const Wire& w : obs.headers) ++counts[{w.sender, w.seq}];
    }
    EXPECT_EQ(counts.size(),
              static_cast<std::size_t>(nsend) * kPerSender)
        << "P1 violated: lost messages";
    for (const auto& [key, n] : counts) {
      EXPECT_EQ(n, 1) << "P1 violated: duplicate delivery of sender "
                      << key.first << " seq " << key.second;
    }
    // P3 for the FCFS sub-stream: each receiver sees per-sender
    // ascending sequence numbers.
    for (const auto& obs : fcfs_obs) {
      std::map<std::uint32_t, std::int64_t> last;
      for (const Wire& w : obs.headers) {
        auto it = last.find(w.sender);
        if (it != last.end()) {
          EXPECT_LT(it->second, static_cast<std::int64_t>(w.seq))
              << "P3 violated in FCFS stream";
        }
        last[w.sender] = w.seq;
      }
    }
  }
  if (nbcast > 0) {
    // P2 + P3 for every broadcast receiver.
    for (const auto& obs : bcast_obs) {
      std::map<std::uint32_t, std::int64_t> last;
      std::map<std::pair<std::uint32_t, std::uint32_t>, int> counts;
      for (const Wire& w : obs.headers) {
        ++counts[{w.sender, w.seq}];
        auto it = last.find(w.sender);
        if (it != last.end()) {
          EXPECT_LT(it->second, static_cast<std::int64_t>(w.seq))
              << "P3 violated in broadcast stream";
        }
        last[w.sender] = w.seq;
      }
      EXPECT_EQ(counts.size(),
                static_cast<std::size_t>(nsend) * kPerSender)
          << "P2 violated";
      for (const auto& [key, n] : counts) EXPECT_EQ(n, 1) << "P2 violated";
    }
  }
  // P5: quiescent pool.
  EXPECT_EQ(f.stats().blocks_free, config.message_blocks)
      << "P5 violated: leaked blocks";
}

std::string shape_name(const ::testing::TestParamInfo<Shape>& param_info) {
  return "s" + std::to_string(std::get<0>(param_info.param)) + "_f" +
         std::to_string(std::get<1>(param_info.param)) + "_b" +
         std::to_string(std::get<2>(param_info.param)) + "_len" +
         std::to_string(std::get<3>(param_info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConservationProperty,
    ::testing::Values(
        // one-to-one, tiny and block-spanning payloads
        Shape{1, 1, 0, 0}, Shape{1, 1, 0, 9}, Shape{1, 1, 0, 10},
        Shape{1, 1, 0, 117},
        // FCFS pools
        Shape{1, 2, 0, 24}, Shape{1, 4, 0, 24}, Shape{2, 3, 0, 48},
        Shape{4, 4, 0, 8},
        // broadcast fan-out
        Shape{1, 0, 1, 24}, Shape{1, 0, 3, 24}, Shape{2, 0, 2, 96},
        // mixed protocols, multiple senders
        Shape{1, 2, 2, 24}, Shape{2, 2, 1, 10}, Shape{3, 2, 2, 33},
        Shape{2, 1, 3, 250},
        // wider fan-in/fan-out and jumbo payloads
        Shape{6, 2, 0, 20}, Shape{1, 6, 0, 64}, Shape{1, 0, 6, 40},
        Shape{4, 3, 3, 100}, Shape{2, 2, 2, 999}, Shape{5, 1, 1, 1}),
    shape_name);

}  // namespace
