// End-to-end smoke: one facility, one LNVC, send/receive round trip on
// every layer (C++ status API, RAII ports, C compat API).
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>

#include "mpf/compat/mpf.h"
#include "mpf/core/facility.hpp"
#include "mpf/core/ports.hpp"
#include "mpf/shm/region.hpp"

namespace {

using namespace mpf;

TEST(Smoke, StatusApiRoundTrip) {
  shm::HeapRegion region(Config{}.derived_arena_bytes());
  Facility f = Facility::create(Config{}, region);

  LnvcId sid = kInvalidLnvc;
  LnvcId rid = kInvalidLnvc;
  ASSERT_EQ(f.open_send(0, "pipe", &sid), Status::ok);
  ASSERT_EQ(f.open_receive(1, "pipe", Protocol::fcfs, &rid), Status::ok);
  EXPECT_EQ(sid, rid);

  const std::string msg = "hello, 1987";
  ASSERT_EQ(f.send(0, sid, msg.data(), msg.size()), Status::ok);
  char buf[64] = {};
  std::size_t len = 0;
  ASSERT_EQ(f.receive(1, rid, buf, sizeof(buf), &len), Status::ok);
  EXPECT_EQ(len, msg.size());
  EXPECT_EQ(std::string(buf, len), msg);

  EXPECT_EQ(f.close_send(0, sid), Status::ok);
  EXPECT_EQ(f.close_receive(1, rid), Status::ok);
  EXPECT_FALSE(f.lnvc_exists("pipe"));
}

TEST(Smoke, PortsApiAcrossThreads) {
  shm::HeapRegion region(Config{}.derived_arena_bytes());
  Facility f = Facility::create(Config{}, region);

  std::thread consumer([&] {
    Participant p(f, 1);
    ReceivePort rx = p.open_receive("work", Protocol::fcfs);
    for (int i = 0; i < 100; ++i) {
      EXPECT_EQ(rx.receive_value<int>(), i);
    }
  });
  {
    Participant p(f, 0);
    SendPort tx = p.open_send("work");
    for (int i = 0; i < 100; ++i) tx.send_value(i);
    consumer.join();
  }
  EXPECT_FALSE(f.lnvc_exists("work"));
}

TEST(Smoke, CCompatApi) {
  ASSERT_EQ(mpf_init(16, 8), 0);
  const int sid = mpf_open_send(0, "conv");
  ASSERT_GE(sid, 0);
  const int rid = mpf_open_receive(1, "conv", MPF_BROADCAST);
  ASSERT_GE(rid, 0);

  EXPECT_EQ(mpf_check_receive(1, rid), 0);
  ASSERT_EQ(mpf_message_send(0, sid, "abc", 3), 0);
  EXPECT_EQ(mpf_check_receive(1, rid), 1);

  char buf[8] = {};
  int len = static_cast<int>(sizeof(buf));
  ASSERT_EQ(mpf_message_receive(1, rid, buf, &len), 0);
  EXPECT_EQ(len, 3);
  EXPECT_EQ(std::memcmp(buf, "abc", 3), 0);

  EXPECT_EQ(mpf_close_send(0, sid), 0);
  EXPECT_EQ(mpf_close_receive(1, rid), 0);
  EXPECT_EQ(mpf_shutdown(), 0);
}

}  // namespace
