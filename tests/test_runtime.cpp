// The process runtime: thread/fork groups, error propagation, timers, RNG.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <unistd.h>

#include "mpf/runtime/group.hpp"
#include "mpf/runtime/rng.hpp"
#include "mpf/runtime/timer.hpp"

namespace {

using namespace mpf::rt;

TEST(RunGroup, ThreadBackendRunsEveryRank) {
  std::atomic<int> mask{0};
  run_group(Backend::thread, 6, [&](int rank) {
    mask.fetch_or(1 << rank);
  });
  EXPECT_EQ(mask.load(), 0b111111);
}

TEST(RunGroup, ThreadBackendPropagatesExceptions) {
  EXPECT_THROW(run_group(Backend::thread, 3,
                         [&](int rank) {
                           if (rank == 1) {
                             throw std::runtime_error("worker 1 failed");
                           }
                         }),
               std::runtime_error);
}

TEST(RunGroup, ZeroOrNegativeCountIsNoop) {
  bool ran = false;
  run_group(Backend::thread, 0, [&](int) { ran = true; });
  run_group(Backend::thread, -3, [&](int) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(RunGroup, ForkBackendIsolatesWorkerState) {
  // Children get copy-on-write memory: writes do not leak back.
  int plain = 7;
  run_group(Backend::fork, 3, [&](int rank) {
    plain = 100 + rank;  // private to the child
  });
  EXPECT_EQ(plain, 7);
}

TEST(RunGroup, ForkBackendReportsChildFailure) {
  EXPECT_THROW(run_group(Backend::fork, 2,
                         [&](int rank) {
                           if (rank == 0) {
                             throw std::runtime_error("child died");
                           }
                         }),
               std::runtime_error);
}

TEST(RunGroup, ForkChildrenHaveDistinctPids) {
  // Each child writes its pid into a pipe; all must differ.
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  run_group(Backend::fork, 3, [&](int) {
    const pid_t me = getpid();
    (void)!write(fds[1], &me, sizeof(me));
  });
  std::set<pid_t> pids;
  for (int i = 0; i < 3; ++i) {
    pid_t p = 0;
    ASSERT_EQ(read(fds[0], &p, sizeof(p)), static_cast<ssize_t>(sizeof(p)));
    pids.insert(p);
  }
  close(fds[0]);
  close(fds[1]);
  EXPECT_EQ(pids.size(), 3u);
  EXPECT_EQ(pids.count(getpid()), 0u);
}

TEST(Runtime, OnlineCpusIsPositive) { EXPECT_GE(online_cpus(), 1); }

TEST(Runtime, WallTimerAdvances) {
  WallTimer timer;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GT(timer.elapsed_ns(), 0u);
  const auto first = timer.elapsed_ns();
  timer.reset();
  EXPECT_LT(timer.elapsed_ns(), first + 1'000'000'000ull);
}

TEST(Runtime, SplitMixIsDeterministicAndSpreads) {
  SplitMix64 a(42), b(42), c(43);
  std::set<std::uint64_t> values;
  bool diverged = false;
  for (int i = 0; i < 1000; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    diverged |= va != c.next();
    values.insert(va);
  }
  EXPECT_TRUE(diverged);
  EXPECT_EQ(values.size(), 1000u) << "collisions in 1000 draws";
}

TEST(Runtime, SplitMixBelowStaysInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

}  // namespace
