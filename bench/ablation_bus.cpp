// Ablation: shared-bus bandwidth.
//
// The paper attributes the base benchmark's asymptote to "memory
// bandwidth" but on the modeled Balance the 80 MB/s bus never binds at
// MPF's software-limited copy rates.  This sweep derates the bus until it
// does bind, locating the crossover: broadcast (the most bus-hungry
// pattern, 16 concurrent copiers) collapses first.
#include <iostream>

#include "mpf/benchlib/figure.hpp"
#include "mpf/benchlib/simrun.hpp"
#include "mpf/benchlib/workloads.hpp"

namespace {

using namespace mpf;
using namespace mpf::benchlib;

double broadcast_throughput(double bus_mb_per_s) {
  Config c;
  c.max_lnvcs = 16;
  c.max_processes = 24;
  c.block_payload = 10;
  c.message_blocks = 32768;
  sim::MachineModel model = sim::MachineModel::balance21000();
  model.bus_ns_per_byte = 1e3 / bus_mb_per_s;  // MB/s -> ns per byte
  constexpr int kRecv = 16;
  constexpr std::size_t kLen = 1024;
  auto run = [&](int msgs) {
    return run_sim(
        c, kRecv + 1,
        [&](Facility f, int rank) {
          if (rank == 0) {
            broadcast_sender(f, kLen, msgs, kRecv);
          } else {
            broadcast_receiver(f, rank, msgs, kRecv);
          }
        },
        model);
  };
  const SimMetrics lo = run(16);
  const SimMetrics hi = run(48);
  return static_cast<double>(hi.bytes_delivered - lo.bytes_delivered) /
         (hi.seconds - lo.seconds);
}

}  // namespace

int main(int argc, char** argv) {
  Figure fig;
  fig.id = "Ablation A3";
  fig.title = "Bus bandwidth derating";
  fig.subtitle = "Broadcast 16x1024B delivered throughput vs bus speed";
  fig.xlabel = "bus_MB_per_s";
  fig.ylabel = "delivered_bytes_per_sec";
  for (const double mbps : {80.0, 8.0, 2.0, 1.0, 0.5, 0.25}) {
    fig.add("bcast 16 recv", mbps, broadcast_throughput(mbps));
  }
  return emit_figure(argc, argv, std::cout, fig);
}
