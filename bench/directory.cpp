// Ablation: sharded hash name directory vs the linear-scan baseline.
//
// The paper's name space is the whole point of open_*: every open() and
// every lnvc_exists() must resolve a string against the live LNVC table.
// The pre-directory implementation scanned the descriptor table; the
// sharded directory (DESIGN.md §14) hashes the name into one of
// Config::dir_buckets chains, so a lookup probes a load-factor-bounded
// chain instead of every live name.  dir_buckets = 1 recreates the
// linear baseline exactly — one chain holding the whole directory — so
// the ablation is a config flip, not a code path switch.
//
// One simulated process opens N distinct names (open throughput: the
// create path pays descriptor work plus the duplicate-check probe of its
// bucket), then resolves kLookups random existing names with
// lnvc_exists() (lookup throughput: a pure directory probe under the
// bucket lock).  Each chain hop charges one bookkeeping op, so the scan
// cost is visible in virtual time.  The hashed series stays roughly flat
// from 1k to 1M names (constant load factor ~4); the linear series
// collapses as O(N) and is swept only to 64k — beyond that a single
// chain is also hopeless in host time, which is rather the point.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>

#include "mpf/benchlib/figure.hpp"
#include "mpf/core/facility.hpp"
#include "mpf/shm/region.hpp"
#include "mpf/sim/sim_platform.hpp"
#include "mpf/sim/simulator.hpp"

namespace {

using namespace mpf;
using namespace mpf::benchlib;

constexpr std::uint32_t kLookups = 5000;

std::string name_of(std::uint32_t i) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "n%07u", i);
  return buf;
}

struct Rates {
  double opens_per_sec = 0;
  double lookups_per_sec = 0;
};

Rates measure(std::uint32_t n_names, bool hashed) {
  Config c;
  c.max_lnvcs = n_names + 8;
  c.max_processes = 2;
  c.block_payload = 16;
  c.message_blocks = 4096;
  c.message_headers = 256;
  // The derived connection pool scales as 8x max_lnvcs for fan-in-heavy
  // workloads; this one holds exactly one send connection per name.
  c.connections = static_cast<std::size_t>(n_names) + 64;
  c.max_pollsets = 1;
  c.pollset_capacity = 8;
  c.dir_buckets = hashed ? 0 : 1;  // 0 = derived ~max_lnvcs/4 buckets
  sim::Simulator simulator{sim::MachineModel::balance21000()};
  sim::SimPlatform platform(simulator);
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility facility = Facility::create(c, region, platform);
  Rates rates;
  simulator.spawn_group(1, [&](int) {
    const std::uint64_t t0 = platform.now_ns();
    for (std::uint32_t i = 0; i < n_names; ++i) {
      LnvcId id = kInvalidLnvc;
      const Status s = facility.open_send(0, name_of(i), &id);
      if (s != Status::ok) std::abort();
    }
    const std::uint64_t t1 = platform.now_ns();
    // Deterministic pseudo-random hit lookups over the live directory.
    std::uint64_t rng = 0x9e3779b97f4a7c15ull;
    std::uint32_t hits = 0;
    for (std::uint32_t i = 0; i < kLookups; ++i) {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      hits += facility.lnvc_exists(name_of(
                  static_cast<std::uint32_t>(rng % n_names)))
                  ? 1
                  : 0;
    }
    const std::uint64_t t2 = platform.now_ns();
    if (hits != kLookups) std::abort();
    rates.opens_per_sec =
        static_cast<double>(n_names) / (static_cast<double>(t1 - t0) * 1e-9);
    rates.lookups_per_sec =
        static_cast<double>(kLookups) / (static_cast<double>(t2 - t1) * 1e-9);
  });
  simulator.run();
  return rates;
}

}  // namespace

int main(int argc, char** argv) {
  Figure fig;
  fig.id = "Ablation A9";
  fig.title = "Sharded name directory";
  fig.subtitle = "Open and lookup throughput vs live names";
  fig.xlabel = "names";
  fig.ylabel = "ops_per_sec";
  for (const std::uint32_t n : {1024u, 8192u, 65536u, 262144u, 1048576u}) {
    const auto x = static_cast<double>(n);
    const Rates h = measure(n, /*hashed=*/true);
    fig.add("open hashed", x, h.opens_per_sec);
    fig.add("lookup hashed", x, h.lookups_per_sec);
    if (n <= 65536u) {
      const Rates l = measure(n, /*hashed=*/false);
      fig.add("open linear", x, l.opens_per_sec);
      fig.add("lookup linear", x, l.lookups_per_sec);
    }
  }
  return emit_figure(argc, argv, std::cout, fig);
}
