// Overload robustness: per-LNVC quotas + send deadlines at 2-10x load.
//
// Four well-behaved sender/receiver pairs share a facility with eight hot
// senders that blast one circuit whose receiver drains x times slower
// than they offer (the x axis: offered load as a multiple of the hot
// receiver's service rate).  Without admission control, the hot circuit's
// unbounded backlog swallows the block pool and every circuit starves —
// the well-behaved pairs' goodput collapses even though their own demand
// never changed.  With a per-LNVC quota on the queued-block budget (block
// policy + send deadlines), the hot circuit saturates at its cap, its
// senders park and time out, and the well-behaved pairs keep nearly their
// isolated throughput with delivery latency bounded by the send deadline.
//
// Series (all on the well-behaved circuits):
//   isolated baseline      hot senders idle — the no-interference ceiling
//   goodput, no quotas     default config (quota 0 = unlimited)
//   goodput, quota         hot circuit budgeted to kQuotaBlocks
//   p99 us, no quotas      delivery latency p99 (lower is better)
//   p99 us, quota          bounded by the 2 ms send deadline
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <vector>

#include "mpf/benchlib/figure.hpp"
#include "mpf/core/facility.hpp"
#include "mpf/shm/region.hpp"
#include "mpf/sim/sim_platform.hpp"
#include "mpf/sim/simulator.hpp"

namespace {

using namespace mpf;
using namespace mpf::benchlib;

constexpr int kWbPairs = 4;      // ranks 0..3 send, 4..7 receive
constexpr int kHotSenders = 8;   // ranks 8..15; rank 16 is the hot receiver
constexpr int kProcs = 2 * kWbPairs + kHotSenders + 1;
constexpr std::size_t kLen = 256;           // 4 blocks at 64 B payload
constexpr std::size_t kPoolBlocks = 256;    // 64 queued messages drain it
constexpr std::uint32_t kQuotaBlocks = 128; // hot backlog cap: 32 messages
// The Balance-21000 model prices one LNVC send or receive at roughly 3 ms
// of virtual time; every pacing constant lives at that scale.
constexpr std::uint64_t kOpCostNs = 3'000'000;
constexpr std::uint64_t kWbGapNs = 10'000'000;    // per-pair think time
constexpr std::uint64_t kHotGapNs = 10'000'000;   // per-hot-sender gap
constexpr std::uint64_t kDeadlineNs = 100'000'000;  // send deadline, 100 ms
constexpr std::uint64_t kEndNs = 3'000'000'000;     // 3 s virtual window
constexpr std::uint64_t kPollNs = 10'000'000;       // receiver re-check tick
// Saturated no-quota runs are chaotic: who wins each pool-exhaustion race
// depends on the phase alignment between wb send attempts and hot frees,
// and a startup skew of 100 us can move wb goodput by 40%.  Each reported
// point therefore averages kPhaseRuns runs whose processes start with a
// deterministic per-rank stagger of run * kPhaseStepNs, which samples the
// alignment space instead of baking one lucky draw into the reference.
constexpr int kPhaseRuns = 5;
constexpr std::uint64_t kPhaseStepNs = 50'000;  // 50 us per rank per run

struct RunResult {
  std::uint64_t wb_delivered = 0;
  double p99_us = 0;
  std::uint64_t wb_send_timeouts = 0;
  std::uint64_t hot_send_timeouts = 0;
  std::uint64_t quota_parks = 0;
  std::uint64_t runs = 1;
  std::vector<double> latencies_us;
  [[nodiscard]] double goodput() const {
    return static_cast<double>(wb_delivered) /
           (static_cast<double>(kEndNs) * 1e-9 * static_cast<double>(runs));
  }
};

Config overload_config(bool quota) {
  Config c;
  c.max_lnvcs = 16;
  c.max_processes = kProcs + 1;
  c.block_payload = 64;
  c.message_blocks = kPoolBlocks;
  if (quota) {
    c.lnvc_quota_blocks = kQuotaBlocks;
    c.admission_policy = AdmissionPolicy::block;
  }
  return c;
}

/// One full simulated run.  `x` is the hot offered-load multiple (the hot
/// receiver services one message every x * kHotGapNs / kHotSenders);
/// `phase_ns` staggers every rank's start by rank * phase_ns.
RunResult run_overload(double x, bool quota, bool hot_active,
                       std::uint64_t phase_ns) {
  sim::Simulator simulator{sim::MachineModel::balance21000()};
  sim::SimPlatform platform(simulator);
  const Config c = overload_config(quota);
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region, platform);
  // Aggregate hot inter-arrival: each hot sender completes one send every
  // gap + send-cost.  A service time of x times that is an offered load of
  // (about) x; the receiver's own ~3 ms receive cost counts toward it.
  const double hot_interarrival_ns =
      static_cast<double>(kHotGapNs + kOpCostNs) / kHotSenders;
  const double total_service_ns = x * hot_interarrival_ns;
  const auto hot_service_ns = static_cast<std::uint64_t>(
      total_service_ns > static_cast<double>(kOpCostNs)
          ? total_service_ns - static_cast<double>(kOpCostNs)
          : 0.0);

  // The conductor serializes simulated processes, so per-rank slots need
  // no locking; each receiver writes only its own latency vector.
  std::vector<std::vector<double>> latency(kWbPairs);
  std::vector<std::uint64_t> delivered(kWbPairs, 0);
  std::vector<std::uint64_t> wb_timeouts(kWbPairs, 0);
  std::vector<std::uint64_t> hot_timeouts(kHotSenders, 0);

  simulator.spawn_group(kProcs, [&](int rank) {
    char name[16];
    char buf[kLen] = {};
    const auto pid = static_cast<ProcessId>(rank);
    if (phase_ns != 0) {
      simulator.advance(static_cast<double>(phase_ns) *
                        static_cast<double>(rank + 1));
    }
    if (rank < kWbPairs) {  // well-behaved sender
      std::snprintf(name, sizeof name, "wb%d", rank);
      LnvcId id;
      if (f.open_send(pid, name, &id) != Status::ok) return;
      while (platform.now_ns() < kEndNs) {
        const std::uint64_t stamp = platform.now_ns();
        std::memcpy(buf, &stamp, sizeof stamp);
        const Status s = f.send_timed(pid, id, buf, kLen, kDeadlineNs);
        if (s == Status::timed_out) ++wb_timeouts[rank];
        simulator.advance(static_cast<double>(kWbGapNs));
      }
      (void)f.close_send(pid, id);
    } else if (rank < 2 * kWbPairs) {  // well-behaved receiver
      const int pair = rank - kWbPairs;
      std::snprintf(name, sizeof name, "wb%d", pair);
      LnvcId id;
      if (f.open_receive(pid, name, Protocol::fcfs, &id) != Status::ok) {
        return;
      }
      for (;;) {
        std::size_t len = 0;
        const Status s = f.receive_for(pid, id, buf, kLen, &len, kPollNs);
        if (s == Status::ok || s == Status::truncated) {
          std::uint64_t stamp = 0;
          std::memcpy(&stamp, buf, sizeof stamp);
          latency[pair].push_back(
              static_cast<double>(platform.now_ns() - stamp) * 1e-3);
          ++delivered[pair];
          continue;  // drain the backlog before checking the clock
        }
        if (platform.now_ns() >= kEndNs) break;
      }
      (void)f.close_receive(pid, id);
    } else if (rank < kProcs - 1) {  // hot sender
      if (!hot_active) return;
      LnvcId id;
      if (f.open_send(pid, "hot", &id) != Status::ok) return;
      while (platform.now_ns() < kEndNs) {
        const Status s = f.send_timed(pid, id, buf, kLen, kDeadlineNs);
        if (s == Status::timed_out) ++hot_timeouts[rank - 2 * kWbPairs];
        simulator.advance(static_cast<double>(kHotGapNs));
      }
      (void)f.close_send(pid, id);
    } else {  // hot receiver: x times too slow for the offered load
      if (!hot_active) return;
      LnvcId id;
      if (f.open_receive(pid, "hot", Protocol::fcfs, &id) != Status::ok) {
        return;
      }
      for (;;) {
        std::size_t len = 0;
        const Status s = f.receive_for(pid, id, buf, kLen, &len, kPollNs);
        if (s == Status::ok || s == Status::truncated) {
          simulator.advance(static_cast<double>(hot_service_ns));
          continue;
        }
        if (platform.now_ns() >= kEndNs) break;
      }
      (void)f.close_receive(pid, id);
    }
  });
  simulator.run();

  RunResult r;
  std::vector<double> all;
  for (int i = 0; i < kWbPairs; ++i) {
    r.wb_delivered += delivered[i];
    r.wb_send_timeouts += wb_timeouts[i];
    all.insert(all.end(), latency[i].begin(), latency[i].end());
  }
  for (const std::uint64_t t : hot_timeouts) r.hot_send_timeouts += t;
  if (!all.empty()) {
    std::sort(all.begin(), all.end());
    r.p99_us = all[std::min(all.size() - 1, all.size() * 99 / 100)];
  }
  r.latencies_us = std::move(all);
  r.quota_parks = f.stats().quota_parks;
  return r;
}

/// kPhaseRuns phase-staggered runs, aggregated: counters sum (goodput
/// divides by the run count), latency p99 is taken over the pooled sample.
RunResult run_overload_avg(double x, bool quota, bool hot_active) {
  RunResult agg;
  agg.runs = 0;
  for (int run = 0; run < kPhaseRuns; ++run) {
    RunResult r = run_overload(
        x, quota, hot_active, static_cast<std::uint64_t>(run) * kPhaseStepNs);
    agg.wb_delivered += r.wb_delivered;
    agg.wb_send_timeouts += r.wb_send_timeouts;
    agg.hot_send_timeouts += r.hot_send_timeouts;
    agg.quota_parks += r.quota_parks;
    agg.runs += 1;
    agg.latencies_us.insert(agg.latencies_us.end(), r.latencies_us.begin(),
                            r.latencies_us.end());
  }
  if (!agg.latencies_us.empty()) {
    std::sort(agg.latencies_us.begin(), agg.latencies_us.end());
    agg.p99_us = agg.latencies_us[std::min(
        agg.latencies_us.size() - 1, agg.latencies_us.size() * 99 / 100)];
  }
  return agg;
}

}  // namespace

int main(int argc, char** argv) {
  Figure fig;
  fig.id = "Ablation A7";
  fig.title = "Overload robustness";
  fig.subtitle =
      "Well-behaved goodput and delivery p99 vs hot offered load "
      "(4 wb pairs + 8 hot senders, 3 s window, 100 ms send deadline; "
      "each point averages 5 phase-staggered runs)";
  fig.xlabel = "offered_load_multiple";
  fig.ylabel = "wb_goodput_msgs_per_sec (p99 series: us)";

  const RunResult isolated =
      run_overload_avg(1.0, /*quota=*/false, /*hot_active=*/false);
  for (const double x : {2.0, 4.0, 6.0, 8.0, 10.0}) {
    const RunResult base = run_overload_avg(x, /*quota=*/false, true);
    const RunResult quota = run_overload_avg(x, /*quota=*/true, true);
    fig.add("isolated baseline", x, isolated.goodput());
    fig.add("goodput, no quotas", x, base.goodput());
    fig.add("goodput, quota+deadline", x, quota.goodput());
    fig.add("p99 us, no quotas", x, base.p99_us);
    fig.add("p99 us, quota+deadline", x, quota.p99_us);
    std::printf(
        "# x=%.0f no-quota: %llu delivered, %llu wb timeouts, "
        "%llu hot timeouts | quota: %llu delivered, %llu wb timeouts, "
        "%llu hot timeouts, %llu parks\n",
        x, static_cast<unsigned long long>(base.wb_delivered),
        static_cast<unsigned long long>(base.wb_send_timeouts),
        static_cast<unsigned long long>(base.hot_send_timeouts),
        static_cast<unsigned long long>(quota.wb_delivered),
        static_cast<unsigned long long>(quota.wb_send_timeouts),
        static_cast<unsigned long long>(quota.hot_send_timeouts),
        static_cast<unsigned long long>(quota.quota_parks));
  }
  return emit_figure(argc, argv, std::cout, fig);
}
