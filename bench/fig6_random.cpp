// Figure 6: Random Benchmark — Throughput vs Processes.
//
// Fully connected communication: one FCFS LNVC per destination process;
// each process repeatedly sends a fixed-length message to a random
// destination and then drains every message queued in its own LNVC (paper
// §4).  Throughput rises with additional processes (concurrent operation
// on multiple LNVCs), but for 1024-byte messages the paper observed a
// collapse beyond ~10 processes caused by paging of the message buffers;
// the simulator's paging model reproduces that mechanism.
#include <iostream>

#include "mpf/benchlib/figure.hpp"
#include "mpf/benchlib/simrun.hpp"
#include "mpf/benchlib/workloads.hpp"

namespace {

using namespace mpf;
using namespace mpf::benchlib;

Config bench_config() {
  Config c;
  c.max_lnvcs = 64;
  c.max_processes = 24;
  c.block_payload = 10;
  c.message_blocks = 65536;
  return c;
}

double random_throughput(std::size_t len, int nprocs) {
  auto run = [&](int msgs) {
    return run_sim(bench_config(), nprocs, [&](Facility f, int rank) {
      random_worker(f, rank, nprocs, len, msgs, /*seed=*/1987);
    });
  };
  const SimMetrics lo = run(12);
  const SimMetrics hi = run(36);
  return static_cast<double>(hi.bytes_delivered - lo.bytes_delivered) /
         (hi.seconds - lo.seconds);
}

}  // namespace

int main(int argc, char** argv) {
  Figure fig;
  fig.id = "Figure 6";
  fig.title = "Random Benchmark";
  fig.subtitle = "Throughput vs Processes (simulated Balance 21000)";
  fig.xlabel = "processes";
  fig.ylabel = "throughput_bytes_per_sec";
  for (const std::size_t len : {1u, 8u, 64u, 256u, 1024u}) {
    const std::string label = std::to_string(len) + "B";
    for (const int nprocs : {2, 4, 6, 8, 10, 12, 14, 16, 18, 20}) {
      fig.add(label, nprocs, random_throughput(len, nprocs));
    }
  }
  return emit_figure(argc, argv, std::cout, fig);
}
