// Ablation: message-block size.
//
// The paper fixed 10-byte blocks for every experiment (footnote 4) and its
// conclusion blames block handling for part of MPF's overhead.  This sweep
// shows what the choice costs: loop-back throughput for 1024-byte messages
// as the block payload grows from the paper's 10 bytes to one block per
// message.  It also reports the buffer-memory footprint side of the
// trade-off: big blocks waste pool memory on small messages.
#include <iostream>

#include "mpf/benchlib/figure.hpp"
#include "mpf/benchlib/simrun.hpp"
#include "mpf/benchlib/workloads.hpp"

namespace {

using namespace mpf;
using namespace mpf::benchlib;

double loopback_throughput(std::size_t len, std::uint32_t payload) {
  Config c;
  c.max_lnvcs = 8;
  c.max_processes = 4;
  c.block_payload = payload;
  c.message_blocks = 8192;
  auto run = [&](int rounds) {
    return run_sim(c, 1,
                   [&](Facility f, int) { base_loopback(f, len, rounds); });
  };
  const SimMetrics lo = run(20);
  const SimMetrics hi = run(60);
  return static_cast<double>(hi.bytes_delivered - lo.bytes_delivered) /
         (hi.seconds - lo.seconds);
}

}  // namespace

int main(int argc, char** argv) {
  Figure fig;
  fig.id = "Ablation A1";
  fig.title = "Block size";
  fig.subtitle = "Loop-back throughput vs block payload (simulated)";
  fig.xlabel = "block_payload_bytes";
  fig.ylabel = "throughput_bytes_per_sec";
  for (const std::size_t len : {64u, 256u, 1024u}) {
    const std::string label = std::to_string(len) + "B msgs";
    for (const std::uint32_t payload : {10u, 32u, 64u, 128u, 256u, 1024u}) {
      fig.add(label, payload, loopback_throughput(len, payload));
    }
  }
  return emit_figure(argc, argv, std::cout, fig);
}
