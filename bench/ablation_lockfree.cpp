// Ablation: lock-free FCFS hand-off vs the descriptor spinlock.
//
// The funnel workload is the MPSC shape the injection stack exists for:
// S senders fan into one FCFS circuit drained by a handful of receivers.
// Under the baseline every sender serialises on the LNVC descriptor lock;
// with Config::lockfree_fcfs each sender CAS-pushes its message onto the
// per-circuit injection stack and only lock holders splice the stack into
// the FIFO (DESIGN.md §12).  The figure sweeps the number of simulated
// processes and plots delivered throughput for both modes — the curves
// separate as contention grows.
#include <cstddef>
#include <iostream>
#include <vector>

#include "mpf/apps/coordination.hpp"
#include "mpf/benchlib/figure.hpp"
#include "mpf/benchlib/simrun.hpp"
#include "mpf/core/ports.hpp"

namespace {

using namespace mpf;
using namespace mpf::benchlib;

constexpr int kReceivers = 4;
constexpr int kTotalMsgs = 4096;  ///< across all senders (per-sender share)
constexpr std::size_t kLen = 64;

double funnel_throughput(int nprocs, bool lockfree) {
  Config c;
  c.max_lnvcs = 16;
  c.max_processes = static_cast<std::uint32_t>(nprocs);
  c.block_payload = 10;
  c.message_blocks = 65536;
  c.lockfree_fcfs = lockfree;
  // A Balance with enough core to hold the whole backlog: the funnel keeps
  // thousands of messages in flight, and under the paper's 32 KB resident
  // budget both modes thrash the pager at 15 ms a fault — paging noise two
  // orders of magnitude above the lock costs this ablation isolates.  The
  // figure benches keep the paper's memory; this one buys 1988's upgrade.
  sim::MachineModel model = sim::MachineModel::balance21000();
  model.resident_bytes = 4 * 1024 * 1024;
  const int senders = nprocs - kReceivers;
  const int msgs = kTotalMsgs / senders;
  const SimMetrics m = run_sim(c, nprocs, [&](Facility f, int rank) {
    const auto pid = static_cast<ProcessId>(rank);
    Participant self(f, pid);
    if (rank < kReceivers) {
      ReceivePort rx = self.open_receive("funnel", Protocol::fcfs);
      apps::startup_barrier(f, pid, nprocs, "funnel.join");
      std::vector<std::byte> in(1 << 12);
      for (;;) {
        const Received r = rx.receive(in);
        if (r.length == 0) break;  // poison
      }
    } else {
      SendPort tx = self.open_send("funnel");
      apps::startup_barrier(f, pid, nprocs, "funnel.join");
      std::vector<std::byte> out(kLen, std::byte{0x5a});
      for (int i = 0; i < msgs; ++i) tx.send(out);
      // Senders-only completion barrier, then the lowest-ranked sender
      // poisons the circuit — one zero-length message per receiver, all
      // after every real message (FCFS keeps them last).
      apps::startup_barrier(f, pid, senders, "funnel.done",
                            /*base_pid=*/kReceivers);
      if (rank == kReceivers) {
        for (int r = 0; r < kReceivers; ++r) {
          tx.send(std::span<const std::byte>{});
        }
      }
    }
  }, model);
  return static_cast<double>(kLen) * msgs * senders / m.seconds;
}

}  // namespace

int main(int argc, char** argv) {
  Figure fig;
  fig.id = "Ablation A8";
  fig.title = "Lock-free FCFS hand-off";
  fig.subtitle = "Funnel throughput vs simulated processes, 4 receivers";
  fig.xlabel = "processes";
  fig.ylabel = "throughput_bytes_per_sec";
  for (const int nprocs : {64, 128, 256, 512, 1024}) {
    const auto x = static_cast<double>(nprocs);
    fig.add("baseline", x, funnel_throughput(nprocs, /*lockfree=*/false));
    fig.add("lockfree", x, funnel_throughput(nprocs, /*lockfree=*/true));
  }
  return emit_figure(argc, argv, std::cout, fig);
}
