// Native (real hardware, google-benchmark) microbenchmarks of the MPF
// primitives and the §5 future-work transports.  These complement the
// simulated figure benches: same code, wall-clock time, this machine.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "mpf/core/channel.hpp"
#include "mpf/core/facility.hpp"
#include "mpf/core/ports.hpp"
#include "mpf/core/rendezvous.hpp"
#include "mpf/shm/region.hpp"
#include "mpf/sync/spinlock.hpp"
#include "mpf/sync/ticket_lock.hpp"

namespace {

using namespace mpf;

Config micro_config() {
  Config c;
  c.max_lnvcs = 16;
  c.max_processes = 8;
  c.block_payload = 64;
  c.message_blocks = 16384;
  return c;
}

/// Loop-back send+receive of one message (the paper's base benchmark).
void BM_LnvcLoopback(benchmark::State& state) {
  const std::size_t len = state.range(0);
  shm::HeapRegion region(micro_config().derived_arena_bytes());
  Facility f = Facility::create(micro_config(), region);
  Participant self(f, 0);
  SendPort tx = self.open_send("loop");
  ReceivePort rx = self.open_receive("loop", Protocol::fcfs);
  std::vector<std::byte> out(len, std::byte{1});
  std::vector<std::byte> in(len);
  for (auto _ : state) {
    tx.send(out);
    benchmark::DoNotOptimize(rx.receive(in));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * len);
}
BENCHMARK(BM_LnvcLoopback)->Arg(16)->Arg(256)->Arg(1024)->Arg(4096);

/// check_receive on an empty LNVC (the polling primitive).
void BM_CheckReceiveEmpty(benchmark::State& state) {
  shm::HeapRegion region(micro_config().derived_arena_bytes());
  Facility f = Facility::create(micro_config(), region);
  Participant self(f, 0);
  ReceivePort rx = self.open_receive("empty", Protocol::fcfs);
  for (auto _ : state) benchmark::DoNotOptimize(rx.check());
}
BENCHMARK(BM_CheckReceiveEmpty);

/// Open + close of a send connection (LNVC create/destroy cycle).
void BM_OpenCloseCycle(benchmark::State& state) {
  shm::HeapRegion region(micro_config().derived_arena_bytes());
  Facility f = Facility::create(micro_config(), region);
  for (auto _ : state) {
    LnvcId id = kInvalidLnvc;
    (void)f.open_send(0, "cycle", &id);
    (void)f.close_send(0, id);
  }
}
BENCHMARK(BM_OpenCloseCycle);

/// SPSC channel round trip (future-work lock-free path).
void BM_ChannelLoopback(benchmark::State& state) {
  const std::size_t len = state.range(0);
  std::vector<std::byte> memory(Channel::footprint(1 << 16));
  Channel ch = Channel::create(memory.data(), 1 << 16);
  std::vector<std::byte> out(len, std::byte{1});
  std::vector<std::byte> in(len);
  for (auto _ : state) {
    (void)ch.send(out);
    benchmark::DoNotOptimize(ch.receive(in));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * len);
}
BENCHMARK(BM_ChannelLoopback)->Arg(16)->Arg(256)->Arg(1024)->Arg(4096);

/// Rendezvous hand-off between two threads (future-work single copy).
void BM_RendezvousHandoff(benchmark::State& state) {
  static RendezvousCell* cell = nullptr;
  if (state.thread_index() == 0) cell = new RendezvousCell();
  const std::size_t len = 1024;
  std::vector<std::byte> buf(len, std::byte{1});
  for (auto _ : state) {
    Rendezvous r(*cell);
    if (state.thread_index() == 0) {
      r.send(buf);
    } else {
      benchmark::DoNotOptimize(r.receive(buf));
    }
  }
  if (state.thread_index() == 0) {
    delete cell;
    cell = nullptr;
  }
}
BENCHMARK(BM_RendezvousHandoff)->Threads(2)->UseRealTime();

/// Lock-type ablation: uncontended acquire/release.
template <typename Lock>
void BM_LockUncontended(benchmark::State& state) {
  Lock lock;
  for (auto _ : state) {
    lock.lock();
    benchmark::DoNotOptimize(&lock);
    lock.unlock();
  }
}
BENCHMARK(BM_LockUncontended<mpf::sync::SpinLock>);
BENCHMARK(BM_LockUncontended<mpf::sync::TicketLock>);

/// Lock-type ablation: contended increment from several threads.
template <typename Lock>
void BM_LockContended(benchmark::State& state) {
  static Lock* lock = nullptr;
  static std::uint64_t counter = 0;
  if (state.thread_index() == 0) {
    lock = new Lock();
    counter = 0;
  }
  for (auto _ : state) {
    lock->lock();
    ++counter;
    lock->unlock();
  }
  if (state.thread_index() == 0) {
    benchmark::DoNotOptimize(counter);
    delete lock;
    lock = nullptr;
  }
}
BENCHMARK(BM_LockContended<mpf::sync::SpinLock>)->Threads(4)->UseRealTime();
BENCHMARK(BM_LockContended<mpf::sync::TicketLock>)->Threads(4)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
