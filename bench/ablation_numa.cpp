// Ablation: NUMA-aware message placement.
//
// The Balance 21000 the paper measured was a uniform-memory-access bus
// machine; its successors split memory across nodes where a remote read
// costs several times a local one.  This bench extrapolates MPF onto such
// a machine (MachineModel::numa_nodes = 2) and asks whether placement
// matters: 8 ping-pong pairs, each deliberately split across the two
// nodes, sweep message length with the pool placement policy as the
// series.  "node-blind" always allocates sender-local, so every copy-out
// pays the expensive remote *read*; "receiver-local" places the message
// body on the FCFS claimant's node, so the sender pays the cheaper remote
// *write* (posted stores stream; loads stall — the asymmetry in
// MachineModel::numa_remote_{read,write}_factor) and the receiver copies
// out locally.  A second figure shows the counter mechanics: with
// placement on, pool pops land on the remote (receiver's) sub-pool.
//
// Per-process magazines are off: a magazine is inherently home-node, so
// caching would convert the placement choice back to sender-local and the
// ablation would measure the cache, not the policy.
#include <cstdio>
#include <iostream>
#include <vector>

#include "mpf/benchlib/figure.hpp"
#include "mpf/benchlib/simrun.hpp"
#include "mpf/benchlib/sweep.hpp"
#include "mpf/core/errors.hpp"
#include "mpf/sim/machine.hpp"

namespace {

using namespace mpf;
using namespace mpf::benchlib;

constexpr int kPairs = 8;  // 16 simulated processes, split across 2 nodes
constexpr int kRounds = 40;

Config numa_config(bool prefer_receiver) {
  Config c;
  c.max_lnvcs = 32;
  c.max_processes = 2 * kPairs;
  c.block_payload = 10;
  c.message_blocks = 16384;
  c.slab_threshold = 256;
  c.slab_bytes = 4096;  // largest swept length; keeps footprint honest
  c.slab_count = 32;
  c.per_process_cache = false;
  c.numa_nodes = 2;
  c.numa_prefer_receiver = prefer_receiver;
  return c;
}

sim::MachineModel numa_model() {
  sim::MachineModel m = sim::MachineModel::balance21000();
  m.numa_nodes = 2;
  return m;
}

/// Pair p ping-pongs between pid 2p and pid 2p+1.  The default node
/// assignment (pid mod numa_nodes) puts even pids on node 0 and odd pids
/// on node 1, so every round trip crosses the interconnect both ways.
void pair_body(Facility f, int rank, std::size_t len) {
  const int pair = rank / 2;
  char ping[16];
  char pong[16];
  std::snprintf(ping, sizeof(ping), "pg%d", pair);
  std::snprintf(pong, sizeof(pong), "pn%d", pair);
  std::vector<char> buf(len, 'x');
  std::size_t got = 0;
  LnvcId tx;
  LnvcId rx;
  const auto pid = static_cast<ProcessId>(rank);
  if ((rank & 1) == 0) {
    throw_if_error(f.open_send(pid, ping, &tx), "open");
    throw_if_error(f.open_receive(pid, pong, Protocol::fcfs, &rx), "open");
    for (int i = 0; i < kRounds; ++i) {
      throw_if_error(f.send(pid, tx, buf.data(), len), "send");
      throw_if_error(f.receive(pid, rx, buf.data(), len, &got), "receive");
    }
    (void)f.close_send(pid, tx);
    (void)f.close_receive(pid, rx);
  } else {
    throw_if_error(f.open_receive(pid, ping, Protocol::fcfs, &rx), "open");
    throw_if_error(f.open_send(pid, pong, &tx), "open");
    for (int i = 0; i < kRounds; ++i) {
      throw_if_error(f.receive(pid, rx, buf.data(), len, &got), "receive");
      throw_if_error(f.send(pid, tx, buf.data(), len), "send");
    }
    (void)f.close_receive(pid, rx);
    (void)f.close_send(pid, tx);
  }
}

SimMetrics numa_run(std::size_t len, bool prefer_receiver) {
  return run_sim(
      numa_config(prefer_receiver), 2 * kPairs,
      [len](Facility f, int rank) { pair_body(f, rank, len); },
      numa_model());
}

}  // namespace

int main(int argc, char** argv) {
  Figure thr;
  thr.id = "Ablation A6a";
  thr.title = "NUMA-aware message placement";
  thr.subtitle =
      "Cross-node ping-pong throughput vs message length, 2 nodes x 16 procs";
  thr.xlabel = "message_bytes";
  thr.ylabel = "delivered_bytes_per_sec";
  Figure pops;
  pops.id = "Ablation A6b";
  pops.title = "NUMA-aware message placement";
  pops.subtitle = "Remote-node pool pops (placement at work), same runs";
  pops.xlabel = "message_bytes";
  pops.ylabel = "remote_pops";
  run_sweep(
      {64, 256, 1024, 4096},
      {{"node-blind",
        [](double x) {
          return numa_run(static_cast<std::size_t>(x), false);
        }},
       {"receiver-local",
        [](double x) {
          return numa_run(static_cast<std::size_t>(x), true);
        }}},
      {{&thr, [](const SimMetrics& m) { return m.delivered_throughput(); },
        {}},
       {&pops,
        [](const SimMetrics& m) {
          return static_cast<double>(m.numa_remote_pops);
        },
        {}}});
  const int rc = emit_figure(argc, argv, std::cout, thr);
  print_figure(std::cout, pops);
  return rc;
}
