// Ablation: sharded block-pool allocator.
//
// The seed implementation funneled every message allocation and free
// through one global blocks_lock; at 16 processes that lock is the
// allocator bottleneck the paper's own Figure 4/6 knees hint at.  This
// bench sweeps the shard count on the simulated Balance 21000 and reports
// the virtual time senders spend acquiring allocator (shard) locks:
// shards=1 is the pre-sharding control, and the wait must fall as shards
// are added.  A second series shows the single-process loop-back pays no
// penalty for sharding, and a third isolates the per-process magazine
// cache (hits replace shard-lock visits entirely).
#include <cstdio>
#include <iostream>

#include "mpf/benchlib/figure.hpp"
#include "mpf/benchlib/simrun.hpp"
#include "mpf/benchlib/sweep.hpp"
#include "mpf/benchlib/workloads.hpp"
#include "mpf/shm/region.hpp"
#include "mpf/sim/sim_platform.hpp"

namespace {

using namespace mpf;
using namespace mpf::benchlib;

constexpr int kPairs = 8;  // 16 simulated processes
constexpr int kMsgs = 200;
constexpr std::size_t kLen = 64;

Config pair_config(std::uint32_t shards, bool cache) {
  Config c;
  c.max_lnvcs = 32;
  c.max_processes = 2 * kPairs;
  c.block_payload = 10;
  c.pool_shards = shards;
  c.per_process_cache = cache;
  return c;
}

/// 8 disjoint sender/receiver pairs, one LNVC each: all contention in this
/// workload is on the allocator, not on any LNVC.
void pair_body(Facility f, int rank) {
  const int pair = rank % kPairs;
  char name[16];
  std::snprintf(name, sizeof(name), "pr%d", pair);
  std::size_t len = 0;
  char buf[kLen] = {};
  LnvcId id;
  if (rank < kPairs) {
    if (f.open_send(rank, name, &id) != Status::ok) return;
    for (int i = 0; i < kMsgs; ++i) (void)f.send(rank, id, buf, kLen);
    (void)f.close_send(rank, id);
  } else {
    if (f.open_receive(rank, name, Protocol::fcfs, &id) != Status::ok) return;
    for (int i = 0; i < kMsgs; ++i) (void)f.receive(rank, id, buf, kLen, &len);
    (void)f.close_receive(rank, id);
  }
}

SimMetrics pair_run(std::uint32_t shards, bool cache) {
  return run_sim(pair_config(shards, cache), 2 * kPairs, pair_body);
}

/// One configuration re-run with direct facility access so the per-shard
/// counters (the numbers mpf_inspect shows on a live facility) can be
/// dumped alongside the figure tables.
void print_shard_detail(std::uint32_t shards) {
  sim::Simulator simulator{sim::MachineModel::balance21000()};
  sim::SimPlatform platform(simulator);
  const Config c = pair_config(shards, /*cache=*/false);
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility f = Facility::create(c, region, platform);
  simulator.spawn_group(2 * kPairs, [&](int rank) { pair_body(f, rank); });
  simulator.run();
  std::printf("# per-shard counters, %u shards, 16 procs, cache off\n",
              shards);
  std::printf("# %5s %10s %10s %12s %8s %8s %8s\n", "shard", "free", "cap",
              "acq", "wait_us", "steals", "flushes");
  for (const auto& s : f.pool_shard_infos()) {
    std::printf("  %5u %10zu %10zu %12llu %8.1f %8llu %8llu\n", s.index,
                s.free_blocks, s.block_capacity,
                static_cast<unsigned long long>(s.lock_acquisitions),
                static_cast<double>(s.lock_wait_ns) * 1e-3,
                static_cast<unsigned long long>(s.steals),
                static_cast<unsigned long long>(s.flushes));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  Figure wait;
  wait.id = "Ablation A5a";
  wait.title = "Sharded block pool";
  wait.subtitle = "Allocator lock wait (virtual) vs shard count, 16 procs";
  wait.xlabel = "pool_shards";
  wait.ylabel = "alloc_lock_wait_us";
  Figure rate;
  rate.id = "Ablation A5b";
  rate.title = "Sharded block pool";
  rate.subtitle = "Delivered throughput vs shard count, 16 procs";
  rate.xlabel = "pool_shards";
  rate.ylabel = "delivered_bytes_per_sec";
  const auto wait_us = [](const SimMetrics& m) {
    return static_cast<double>(m.alloc_lock_wait_ns) * 1e-3;
  };
  const auto rate_bps = [](const SimMetrics& m) {
    return m.delivered_throughput();
  };
  run_sweep(
      {1, 2, 4, 8},
      {{"cache off",
        [](double x) {
          return pair_run(static_cast<std::uint32_t>(x), /*cache=*/false);
        }},
       {"cache on",
        [](double x) {
          return pair_run(static_cast<std::uint32_t>(x), /*cache=*/true);
        }}},
      {{&wait, wait_us, {}}, {&rate, rate_bps, {}}});
  print_figure(std::cout, wait);
  const int rc = emit_figure(argc, argv, std::cout, rate);

  // Control: a single process's loop-back must not get slower when the
  // pool is split (it only ever touches its home shard / magazine).
  Figure solo;
  solo.id = "Ablation A5c";
  solo.title = "Sharded block pool";
  solo.subtitle = "Single-process loop-back throughput vs shard count";
  solo.xlabel = "pool_shards";
  solo.ylabel = "delivered_bytes_per_sec";
  run_sweep({1, 2, 4, 8},
            {{"loopback",
              [](double x) {
                Config c;
                c.max_lnvcs = 8;
                c.max_processes = 4;
                c.pool_shards = static_cast<std::uint32_t>(x);
                return run_sim(
                    c, 1, [](Facility f, int) { base_loopback(f, kLen, 400); });
              }}},
            {{&solo, rate_bps, {}}});
  print_figure(std::cout, solo);

  // Magazine effect at 4 shards: hits replace shard-lock acquisitions.
  Figure cache;
  cache.id = "Ablation A5d";
  cache.title = "Per-process magazine cache";
  cache.subtitle = "Shard-lock acquisitions, 16 procs, 4 shards";
  cache.xlabel = "cache (0=off, 1=on)";
  cache.ylabel = "shard_lock_acquisitions";
  run_sweep({0, 1}, {{"", [](double x) { return pair_run(4, x != 0); }}},
            {{&cache,
              [](const SimMetrics& m) {
                return static_cast<double>(m.alloc_lock_acquisitions);
              },
              "acquisitions"},
             {&cache,
              [](const SimMetrics& m) {
                return static_cast<double>(m.cache_hits);
              },
              "cache hits"}});
  print_figure(std::cout, cache);

  print_shard_detail(1);
  print_shard_detail(4);
  return rc;
}
