// Ablation: the paper's §5 future-work transfer modes.
//
// "To support synchronous message passing, copying of data from a sending
// buffer to a linked message buffer and then to the receiving buffer is
// unnecessary; direct data transfer is possible.  Furthermore, if only
// one-to-one communication is implemented, all locking associated with
// message handling is removed."
//
// Three one-to-one transports move the same message stream between two
// simulated Balance processes:
//   lnvc       - the general MPF path (2 copies through 10-byte blocks),
//   rendezvous - synchronous direct transfer (1 copy, no blocks),
//   channel    - lock-free SPSC ring (1 copy each side, contiguous).
#include <iostream>
#include <vector>

#include "mpf/benchlib/figure.hpp"
#include "mpf/benchlib/simrun.hpp"
#include "mpf/core/channel.hpp"
#include "mpf/core/ports.hpp"
#include "mpf/core/rendezvous.hpp"
#include "mpf/shm/region.hpp"
#include "mpf/sim/sim_platform.hpp"

namespace {

using namespace mpf;
using namespace mpf::benchlib;

constexpr int kMsgs = 60;

double lnvc_throughput(std::size_t len) {
  Config c;
  c.max_lnvcs = 8;
  c.max_processes = 4;
  c.block_payload = 10;
  c.message_blocks = 16384;
  const SimMetrics m = run_sim(c, 2, [&](Facility f, int rank) {
    Participant self(f, static_cast<ProcessId>(rank));
    std::vector<std::byte> buf(len, std::byte{1});
    if (rank == 0) {
      SendPort tx = self.open_send("one2one");
      for (int i = 0; i < kMsgs; ++i) tx.send(buf);
    } else {
      ReceivePort rx = self.open_receive("one2one", Protocol::fcfs);
      for (int i = 0; i < kMsgs; ++i) (void)rx.receive(buf);
    }
  });
  return static_cast<double>(len) * kMsgs / m.seconds;
}

double rendezvous_throughput(std::size_t len) {
  sim::Simulator simulator;
  sim::SimPlatform platform(simulator);
  RendezvousCell cell;
  std::vector<std::byte> out(len, std::byte{1});
  simulator.spawn([&] {
    Rendezvous r(cell, platform);
    for (int i = 0; i < kMsgs; ++i) r.send(out);
  });
  simulator.spawn([&] {
    Rendezvous r(cell, platform);
    std::vector<std::byte> in(len);
    for (int i = 0; i < kMsgs; ++i) (void)r.receive(in);
  });
  simulator.run();
  return static_cast<double>(len) * kMsgs /
         (static_cast<double>(simulator.elapsed()) * 1e-9);
}

double channel_throughput(std::size_t len) {
  sim::Simulator simulator;
  sim::SimPlatform platform(simulator);
  std::vector<std::byte> memory(Channel::footprint(1 << 16));
  Channel producer_side =
      Channel::create(memory.data(), 1 << 16, platform);
  std::vector<std::byte> out(len, std::byte{1});
  simulator.spawn([&] {
    for (int i = 0; i < kMsgs; ++i) (void)producer_side.send(out);
  });
  simulator.spawn([&] {
    Channel consumer_side = Channel::attach(memory.data(), platform);
    std::vector<std::byte> in(len);
    for (int i = 0; i < kMsgs; ++i) (void)consumer_side.receive(in);
  });
  simulator.run();
  return static_cast<double>(len) * kMsgs /
         (static_cast<double>(simulator.elapsed()) * 1e-9);
}

}  // namespace

int main() {
  Figure fig;
  fig.id = "Ablation A2";
  fig.title = "One-to-one transfer modes (paper §5 future work)";
  fig.subtitle = "Throughput vs message length, 2 simulated processes";
  fig.xlabel = "message_bytes";
  fig.ylabel = "throughput_bytes_per_sec";
  for (const std::size_t len : {16u, 64u, 256u, 1024u, 4096u}) {
    fig.add("lnvc(general)", len, lnvc_throughput(len));
    fig.add("rendezvous", len, rendezvous_throughput(len));
    fig.add("channel(spsc)", len, channel_throughput(len));
  }
  print_figure(std::cout, fig);
  return 0;
}
