// Ablation: transfer policies through the transport seam.
//
// "To support synchronous message passing, copying of data from a sending
// buffer to a linked message buffer and then to the receiving buffer is
// unnecessary; direct data transfer is possible.  Furthermore, if only
// one-to-one communication is implemented, all locking associated with
// message handling is removed."  (paper §5)
//
// Every policy drives the same two-process ping-pong through the Transport
// interface, so the receive path sits on the critical path of every round
// trip and its cost is what the figure measures:
//   lnvc-copy   - the general MPF path: 10-byte block chains, copy-out,
//   lnvc-view   - same chains, zero-copy receive_view/release_view; the
//                 echo gathers straight from the pinned spans (send_v),
//   lnvc-slab   - contiguous slab extents above Config::slab_threshold,
//                 still copy-out (one bulk transfer, no chain walk),
//   lnvc-slab-view - slabs + views: no chain walk, no copy-out,
//   rendezvous  - synchronous direct transfer (1 copy, no blocks),
//   channel     - lock-free SPSC ring (1 copy each side, contiguous).
#include <cstddef>
#include <iostream>
#include <vector>

#include "mpf/benchlib/figure.hpp"
#include "mpf/benchlib/simrun.hpp"
#include "mpf/core/errors.hpp"
#include "mpf/core/transport.hpp"
#include "mpf/sim/sim_platform.hpp"

namespace {

using namespace mpf;
using namespace mpf::benchlib;

constexpr int kRounds = 40;

/// One ping-pong round trip per iteration; the echo side either copies out
/// and re-sends, or gathers the reply straight from a pinned view.
void pingpong_origin(Transport& t, std::size_t len, bool use_view) {
  std::vector<std::byte> buf(len, std::byte{1});
  for (int i = 0; i < kRounds; ++i) {
    throw_if_error(t.send(buf.data(), buf.size()), "pingpong");
    if (use_view) {
      MsgView v;
      throw_if_error(t.receive_view(&v), "pingpong");
      throw_if_error(t.release_view(&v), "pingpong");
    } else {
      RecvResult r;
      throw_if_error(t.receive(buf.data(), buf.size(), &r), "pingpong");
    }
  }
}

void pingpong_echo(Transport& t, std::size_t len, bool use_view) {
  std::vector<std::byte> buf(len);
  for (int i = 0; i < kRounds; ++i) {
    if (use_view) {
      MsgView v;
      throw_if_error(t.receive_view(&v), "pingpong");
      // Gather straight from the pinned message: materialize the offset
      // spans against this mapping, then scatter-gather send them.
      const std::vector<ConstBuffer> spans = t.materialize(v);
      throw_if_error(t.send_v(spans), "pingpong");
      throw_if_error(t.release_view(&v), "pingpong");
    } else {
      RecvResult r;
      throw_if_error(t.receive(buf.data(), buf.size(), &r), "pingpong");
      throw_if_error(t.send(buf.data(), r.length), "pingpong");
    }
  }
}

double lnvc_pingpong(std::size_t len, bool use_view, bool use_slab) {
  Config c;
  c.max_lnvcs = 8;
  c.max_processes = 4;
  c.block_payload = 10;
  c.message_blocks = 16384;
  if (use_slab) c.slab_threshold = 256;
  const SimMetrics m = run_sim(c, 2, [&](Facility f, int rank) {
    const auto pid = static_cast<ProcessId>(rank);
    LnvcId ping = 0;
    LnvcId pong = 0;
    if (rank == 0) {
      throw_if_error(f.open_send(pid, "ping", &ping), "open");
      throw_if_error(f.open_receive(pid, "pong", Protocol::fcfs, &pong), "open");
      LnvcTransport t(f, pid, /*tx=*/ping, /*rx=*/pong);
      pingpong_origin(t, len, use_view);
    } else {
      throw_if_error(f.open_receive(pid, "ping", Protocol::fcfs, &ping), "open");
      throw_if_error(f.open_send(pid, "pong", &pong), "open");
      LnvcTransport t(f, pid, /*tx=*/pong, /*rx=*/ping);
      pingpong_echo(t, len, use_view);
    }
  });
  return 2.0 * static_cast<double>(len) * kRounds / m.seconds;
}

double rendezvous_pingpong(std::size_t len) {
  sim::Simulator simulator;
  sim::SimPlatform platform(simulator);
  RendezvousCell ping;
  RendezvousCell pong;
  simulator.spawn([&] {
    RendezvousTransport t(Rendezvous(ping, platform),
                          Rendezvous(pong, platform));
    pingpong_origin(t, len, /*use_view=*/false);
  });
  simulator.spawn([&] {
    RendezvousTransport t(Rendezvous(pong, platform),
                          Rendezvous(ping, platform));
    pingpong_echo(t, len, /*use_view=*/false);
  });
  simulator.run();
  return 2.0 * static_cast<double>(len) * kRounds /
         (static_cast<double>(simulator.elapsed()) * 1e-9);
}

double channel_pingpong(std::size_t len) {
  sim::Simulator simulator;
  sim::SimPlatform platform(simulator);
  std::vector<std::byte> ping_mem(Channel::footprint(1 << 16));
  std::vector<std::byte> pong_mem(Channel::footprint(1 << 16));
  Channel ping = Channel::create(ping_mem.data(), 1 << 16, platform);
  Channel pong = Channel::create(pong_mem.data(), 1 << 16, platform);
  simulator.spawn([&] {
    ChannelTransport t(ping, pong);
    pingpong_origin(t, len, /*use_view=*/false);
  });
  simulator.spawn([&] {
    ChannelTransport t(pong, ping);
    pingpong_echo(t, len, /*use_view=*/false);
  });
  simulator.run();
  return 2.0 * static_cast<double>(len) * kRounds /
         (static_cast<double>(simulator.elapsed()) * 1e-9);
}

}  // namespace

int main(int argc, char** argv) {
  Figure fig;
  fig.id = "Ablation A2";
  fig.title = "Transfer policies through the transport seam";
  fig.subtitle = "Ping-pong throughput vs message length, 2 sim processes";
  fig.xlabel = "message_bytes";
  fig.ylabel = "throughput_bytes_per_sec";
  for (const std::size_t len : {16u, 64u, 256u, 1024u, 4096u}) {
    const auto x = static_cast<double>(len);
    fig.add("lnvc-copy", x, lnvc_pingpong(len, false, false));
    fig.add("lnvc-view", x, lnvc_pingpong(len, true, false));
    fig.add("lnvc-slab", x, lnvc_pingpong(len, false, true));
    fig.add("lnvc-slab-view", x, lnvc_pingpong(len, true, true));
    fig.add("rendezvous", x, rendezvous_pingpong(len));
    fig.add("channel", x, channel_pingpong(len));
  }
  return emit_figure(argc, argv, std::cout, fig);
}
