// Chaos recovery: deterministic fault injection over the fully-connected
// random workload (DESIGN.md §8).
//
// For each seed, FaultPlan::random derives a set of kills (at a virtual
// time, at the k-th lock acquisition, or at the n-th send) and the same
// workload runs twice.  Reported per seed: how many deaths fired, what
// recovery did (suspicions -> seizures -> reaps -> blocks reclaimed), the
// failure statuses surviving callers observed, whether the block pool
// balanced after the final sweep, and whether the two runs produced the
// bit-identical event trace the simulator promises.
#include <cinttypes>
#include <cstdio>

#include "mpf/benchlib/simrun.hpp"
#include "mpf/benchlib/workloads.hpp"

namespace {

using namespace mpf;
using namespace mpf::benchlib;

constexpr int kProcs = 12;
constexpr int kMsgs = 160;
constexpr std::size_t kLen = 64;

Config bench_config() {
  Config c;
  c.max_lnvcs = 32;
  c.max_processes = 16;
  c.block_payload = 10;
  c.message_blocks = 8192;
  c.suspicion_ns = 2'000'000;  // 2 ms of virtual time
  return c;
}

}  // namespace

int main() {
  std::printf(
      "# chaos_recovery: %d processes, %d sends each, random fault plans\n",
      kProcs, kMsgs);
  std::printf("%6s %5s %10s %8s %5s %9s %9s %8s %9s %6s %10s\n", "seed",
              "kills", "suspicions", "seizures", "reaps", "conns", "blocks",
              "peerfail", "orphaned", "consv", "replay");
  int bad = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const sim::FaultPlan plan = sim::FaultPlan::random(
        seed, kProcs, /*max_kills=*/3, /*horizon_ns=*/40'000'000);
    const auto body = [&](Facility f, int rank) {
      chaos_worker(f, rank, kProcs, kLen, kMsgs, seed);
    };
    const ChaosMetrics a = run_chaos(bench_config(), kProcs, plan, body);
    const ChaosMetrics b = run_chaos(bench_config(), kProcs, plan, body);
    const bool replay_ok = a.trace_hash == b.trace_hash;
    if (!a.blocks_conserved || !replay_ok) ++bad;
    std::printf(
        "%6" PRIu64 " %5" PRIu64 " %10" PRIu64 " %8" PRIu64 " %5" PRIu64
        " %9" PRIu64 " %9" PRIu64 " %8" PRIu64 " %9" PRIu64 " %6s %10s\n",
        seed, a.kills, a.suspicions, a.seizures, a.reaps,
        a.reaped_connections, a.reclaimed_blocks, a.peer_failures,
        a.orphaned_receives, a.blocks_conserved ? "yes" : "NO",
        replay_ok ? "same" : "DIFF");
  }
  if (bad != 0) {
    std::printf("# FAILED: %d seeds broke conservation or determinism\n",
                bad);
    return 1;
  }
  std::printf("# all seeds: blocks conserved, replays bit-identical\n");
  return 0;
}
