// Figure 4: Fcfs Benchmark — Throughput vs. Receiving Processes.
//
// One process sends K-byte messages to an LNVC with N FCFS receiving
// processes (paper §4).  The paper's result: total throughput is limited
// by the (single) sender's transmission rate; the 16- and 128-byte curves
// *decline* as receivers are added because of LNVC contention, while the
// 1024-byte curve is flat — copying masks the contention.
#include <iostream>

#include "mpf/benchlib/figure.hpp"
#include "mpf/benchlib/simrun.hpp"
#include "mpf/benchlib/workloads.hpp"

namespace {

using namespace mpf;
using namespace mpf::benchlib;

Config bench_config() {
  Config c;
  c.max_lnvcs = 16;
  c.max_processes = 24;
  c.block_payload = 10;
  c.message_blocks = 32768;
  return c;
}

double fcfs_throughput(std::size_t len, int nrecv) {
  auto run = [&](int msgs) {
    return run_sim(bench_config(), nrecv + 1, [&](Facility f, int rank) {
      if (rank == 0) {
        fcfs_sender(f, len, msgs, nrecv);
      } else {
        fcfs_receiver(f, rank, nrecv);
      }
    });
  };
  const SimMetrics lo = run(24);
  const SimMetrics hi = run(72);
  return static_cast<double>(hi.bytes_delivered - lo.bytes_delivered) /
         (hi.seconds - lo.seconds);
}

}  // namespace

int main(int argc, char** argv) {
  Figure fig;
  fig.id = "Figure 4";
  fig.title = "Fcfs Benchmark";
  fig.subtitle = "Throughput vs Receiving Processes (simulated Balance 21000)";
  fig.xlabel = "receivers";
  fig.ylabel = "throughput_bytes_per_sec";
  for (const std::size_t len : {16u, 128u, 1024u}) {
    const std::string label = std::to_string(len) + "B";
    for (const int nrecv : {1, 2, 4, 8, 12, 16}) {
      fig.add(label, nrecv, fcfs_throughput(len, nrecv));
    }
  }
  return emit_figure(argc, argv, std::cout, fig);
}
