// Extension experiment E2: collective-operation cost vs group size on the
// simulated Balance 21000.
//
// The collectives are linear-time (token collection at a root) — faithful
// to what a 1987 library over LNVCs would do — so the expectation to
// verify is linear growth with group size, with alltoall the steepest.
#include <iostream>

#include "mpf/benchlib/figure.hpp"
#include "mpf/benchlib/simrun.hpp"
#include "mpf/coll/collectives.hpp"

namespace {

using namespace mpf;
using namespace mpf::benchlib;
using coll::Communicator;
using coll::Op;

Config coll_config(int size) {
  Config c;
  c.max_lnvcs = static_cast<std::uint32_t>(size * size + 4 * size + 8);
  c.max_processes = static_cast<std::uint32_t>(size + 2);
  c.connections = static_cast<std::size_t>(size) * size * 4 + 64;
  c.message_blocks = 1 << 15;
  c.block_payload = 10;
  return c;
}

/// Virtual seconds per operation, startup cancelled by a differential of
/// two repetition counts.
double per_op_seconds(int size, const char* which) {
  auto run = [&](int reps) {
    return run_sim(coll_config(size), size, [&](Facility f, int rank) {
      Communicator comm(f, rank, size, "e2");
      std::vector<double> v(8, rank);
      std::vector<std::byte> a2a(static_cast<std::size_t>(size) * 64);
      std::vector<std::byte> a2a_out(a2a.size());
      std::vector<std::byte> bc(256, std::byte{1});
      for (int i = 0; i < reps; ++i) {
        if (std::string_view(which) == "barrier") {
          comm.barrier();
        } else if (std::string_view(which) == "broadcast256B") {
          comm.broadcast(bc.data(), bc.size(), 0);
        } else if (std::string_view(which) == "allreduce8d") {
          comm.allreduce(v.data(), v.data(), v.size(), Op::sum);
        } else {
          comm.alltoall(a2a.data(), 64, a2a_out.data());
        }
      }
    }).seconds;
  };
  return (run(9) - run(3)) / 6.0;
}

}  // namespace

int main(int argc, char** argv) {
  Figure fig;
  fig.id = "Extension E2";
  fig.title = "Collectives over LNVCs";
  fig.subtitle = "Virtual time per operation vs group size";
  fig.xlabel = "group_size";
  fig.ylabel = "seconds_per_op";
  for (const char* which :
       {"barrier", "broadcast256B", "allreduce8d", "alltoall64B"}) {
    for (const int size : {2, 4, 8, 12, 16}) {
      fig.add(which, size, per_op_seconds(size, which));
    }
  }
  return emit_figure(argc, argv, std::cout, fig);
}
