// Figure 7: Gauss Jordan — Speedup vs. Processes.
//
// Message-based Gauss-Jordan with partial pivoting (paper §4): FCFS
// maxima to an arbiter, BROADCAST pivot-row fan-out.  Speedup is measured
// against the sequential solver running on one simulated Balance CPU.
// The paper's shape: larger matrices scale further; the 32x32 curve peaks
// early and declines as communication swamps the shrinking per-process
// computation.
#include <iostream>

#include "mpf/apps/gauss_jordan.hpp"
#include "mpf/benchlib/figure.hpp"
#include "mpf/benchlib/simrun.hpp"
#include "mpf/shm/region.hpp"
#include "mpf/sim/sim_platform.hpp"

namespace {

using namespace mpf;
using namespace mpf::benchlib;
namespace gj = mpf::apps::gj;

Config bench_config() {
  Config c;
  c.max_lnvcs = 16;
  c.max_processes = 24;
  c.block_payload = 10;
  c.message_blocks = 65536;
  return c;
}

double sequential_seconds(const gj::Problem& problem) {
  sim::Simulator simulator;
  sim::SimPlatform platform(simulator);
  simulator.spawn([&] { (void)gj::solve_sequential(problem, &platform); });
  simulator.run();
  return static_cast<double>(simulator.elapsed()) * 1e-9;
}

double parallel_seconds(const gj::Problem& problem, int nprocs) {
  const SimMetrics m =
      run_sim(bench_config(), nprocs, [&](Facility f, int rank) {
        (void)gj::worker(f, rank, nprocs, problem);
      });
  return m.seconds;
}

}  // namespace

int main(int argc, char** argv) {
  Figure fig;
  fig.id = "Figure 7";
  fig.title = "Gauss Jordan";
  fig.subtitle = "Speedup vs. Processes (simulated Balance 21000)";
  fig.xlabel = "processes";
  fig.ylabel = "speedup";
  for (const int n : {32, 48, 64, 96}) {
    const gj::Problem problem = gj::random_problem(n, 1987 + n);
    const double t_seq = sequential_seconds(problem);
    const std::string label =
        std::to_string(n) + "x" + std::to_string(n);
    for (const int nprocs : {1, 2, 4, 6, 8, 12, 16}) {
      const double t_par = parallel_seconds(problem, nprocs);
      fig.add(label, nprocs, t_seq / t_par);
    }
  }
  return emit_figure(argc, argv, std::cout, fig);
}
