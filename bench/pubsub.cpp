// Ablation: poll sets + pulses vs receive_any for a wide pub/sub server.
//
// One server terminates C request circuits fed by 10 client processes
// (C/10 circuits each) — the "one daemon, thousands of clients" shape
// the paper's receive_any cannot scale to: its rotation probes listed
// circuits one locked readiness check (a full receive fixed path) at a
// time, so a delivery costs O(C / ready) probes.  A poll set inverts the
// direction: the sender's wake enqueues the ready circuit on the set's
// lock-free ready list, and the server's pollset_wait pops it in O(1)
// regardless of C (DESIGN.md §14).  Pulses carry the request codes, so
// the hot path allocates no blocks at all.
//
// Each client issues requests round-robin over its circuits and waits
// for the server's ack before the next one (a classic RPC daemon), so at
// most 10 circuits are ready at any instant and the receive_any rotation
// really pays its scan.  The figure sweeps C and plots served events per
// second from the server's measurement window (opens and the join
// barrier excluded).
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "mpf/apps/coordination.hpp"
#include "mpf/benchlib/figure.hpp"
#include "mpf/core/facility.hpp"
#include "mpf/shm/region.hpp"
#include "mpf/sim/sim_platform.hpp"
#include "mpf/sim/simulator.hpp"

namespace {

using namespace mpf;
using namespace mpf::benchlib;

constexpr int kClients = 10;
constexpr int kEventsPerClient = 60;

std::string circuit_name(std::uint32_t idx) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "c%06u", idx);
  return buf;
}

std::string ack_name(int client) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "ack%02d", client);
  return buf;
}

void check(Status s) {
  if (s != Status::ok) std::abort();
}

double events_per_sec(std::uint32_t circuits, bool pulses) {
  const std::uint32_t per = circuits / kClients;
  const int nprocs = kClients + 1;
  Config c;
  c.max_lnvcs = circuits + kClients + 8;
  c.max_processes = static_cast<std::uint32_t>(nprocs);
  c.block_payload = 16;
  c.message_blocks = 4096;
  c.message_headers = 1024;
  // One send + one receive connection per request circuit, plus acks and
  // the join barrier; the derived 8x default would dwarf the arena.
  c.connections = 2 * static_cast<std::size_t>(circuits) + 256;
  c.max_pollsets = 2;
  c.pollset_capacity = circuits + 8;
  sim::Simulator simulator{sim::MachineModel::balance21000()};
  sim::SimPlatform platform(simulator);
  shm::HeapRegion region(c.derived_arena_bytes());
  Facility facility = Facility::create(c, region, platform);
  double rate = 0;
  simulator.spawn_group(nprocs, [&](int rank) {
    const auto pid = static_cast<ProcessId>(rank);
    if (rank == 0) {
      // --- server: C receive terminals, one ack circuit per client ----
      std::vector<LnvcId> ids(circuits);
      std::unordered_map<LnvcId, int> owner;  // request circuit -> client
      for (std::uint32_t i = 0; i < circuits; ++i) {
        check(facility.open_receive(pid, circuit_name(i), Protocol::fcfs,
                                    &ids[i]));
        owner[ids[i]] = static_cast<int>(i / per);
      }
      std::vector<LnvcId> ack(kClients);
      for (int k = 0; k < kClients; ++k) {
        check(facility.open_send(pid, ack_name(k), &ack[k]));
      }
      PollSetId ps = kInvalidPollSet;
      if (pulses) {
        check(facility.pollset_create(pid, &ps));
        for (const LnvcId id : ids) check(facility.pollset_add(pid, ps, id));
      }
      apps::startup_barrier(facility, pid, nprocs, "pubsub.join");
      const std::uint64_t t0 = platform.now_ns();
      int remaining = kClients * kEventsPerClient;
      const std::byte ok_byte{0x06};
      if (pulses) {
        while (remaining > 0) {
          LnvcId ready = kInvalidLnvc;
          check(facility.pollset_wait(pid, ps, &ready, Facility::kNoTimeout));
          std::uint32_t code = 0;
          std::uint32_t count = 0;
          check(facility.receive_pulse(pid, ready, &code, &count));
          for (std::uint32_t j = 0; j < count; ++j) {
            check(facility.send(pid, ack[static_cast<std::size_t>(
                                    owner[ready])],
                                &ok_byte, 1));
            --remaining;
          }
        }
      } else {
        std::byte buf[8];
        while (remaining > 0) {
          std::size_t len = 0;
          std::size_t idx = 0;
          check(facility.receive_any(pid, ids, buf, sizeof buf, &len, &idx));
          check(facility.send(pid, ack[idx / per], &ok_byte, 1));
          --remaining;
        }
      }
      const std::uint64_t t1 = platform.now_ns();
      rate = static_cast<double>(kClients * kEventsPerClient) /
             (static_cast<double>(t1 - t0) * 1e-9);
    } else {
      // --- client: per request circuits, one ack terminal -------------
      const int k = rank - 1;
      std::vector<LnvcId> req(per);
      for (std::uint32_t i = 0; i < per; ++i) {
        check(facility.open_send(
            pid, circuit_name(static_cast<std::uint32_t>(k) * per + i),
            &req[i]));
      }
      LnvcId ack_id = kInvalidLnvc;
      check(facility.open_receive(pid, ack_name(k), Protocol::fcfs, &ack_id));
      apps::startup_barrier(facility, pid, nprocs, "pubsub.join");
      const std::byte ping{0x01};
      std::byte buf[8];
      for (int e = 0; e < kEventsPerClient; ++e) {
        const LnvcId target = req[static_cast<std::size_t>(e) % per];
        if (pulses) {
          check(facility.send_pulse(pid, target, 0));
        } else {
          check(facility.send(pid, target, &ping, 1));
        }
        std::size_t len = 0;
        check(facility.receive(pid, ack_id, buf, sizeof buf, &len));
      }
    }
  });
  simulator.run();
  return rate;
}

}  // namespace

int main(int argc, char** argv) {
  Figure fig;
  fig.id = "Ablation A10";
  fig.title = "Pub/sub daemon fan-in";
  fig.subtitle = "Served events/sec vs client circuits, 1 server, 10 clients";
  fig.xlabel = "circuits";
  fig.ylabel = "events_per_sec";
  for (const std::uint32_t circuits : {1000u, 4000u, 10000u}) {
    const auto x = static_cast<double>(circuits);
    fig.add("pollset+pulse", x, events_per_sec(circuits, /*pulses=*/true));
    fig.add("receive_any", x, events_per_sec(circuits, /*pulses=*/false));
  }
  return emit_figure(argc, argv, std::cout, fig);
}
