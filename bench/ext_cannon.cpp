// Extension experiment E1: Cannon's algorithm on the simulated Balance.
//
// Not a paper figure — the paper stops at two applications — but the
// natural next data point for its thesis: a classic mesh algorithm,
// prototyped on MPF, measured on the same simulated 1987 machine as
// Figures 7-8.  Same speedup methodology as Figure 7.
#include <iostream>

#include "mpf/apps/cannon.hpp"
#include "mpf/benchlib/figure.hpp"
#include "mpf/benchlib/simrun.hpp"
#include "mpf/shm/region.hpp"
#include "mpf/sim/sim_platform.hpp"

namespace {

using namespace mpf;
using namespace mpf::benchlib;
namespace cn = mpf::apps::cannon;

Config mesh_config(int mesh) {
  Config c;
  c.max_lnvcs = static_cast<std::uint32_t>(mesh * mesh * mesh * mesh + 64);
  c.max_processes = static_cast<std::uint32_t>(mesh * mesh + 2);
  c.connections =
      static_cast<std::size_t>(mesh) * mesh * mesh * mesh * 4 + 128;
  c.message_blocks = 1 << 16;
  c.block_payload = 10;
  return c;
}

double sequential_seconds(const cn::Problem& p) {
  sim::Simulator simulator;
  sim::SimPlatform platform(simulator);
  simulator.spawn([&] { (void)cn::multiply_sequential(p, &platform); });
  simulator.run();
  return static_cast<double>(simulator.elapsed()) * 1e-9;
}

double mesh_seconds(const cn::Problem& p, int mesh) {
  return run_sim(mesh_config(mesh), mesh * mesh,
                 [&](Facility f, int rank) {
                   (void)cn::worker(f, rank, mesh, p);
                 })
      .seconds;
}

}  // namespace

int main(int argc, char** argv) {
  Figure fig;
  fig.id = "Extension E1";
  fig.title = "Cannon's algorithm";
  fig.subtitle = "Speedup vs mesh processes (simulated Balance 21000)";
  fig.xlabel = "processes";
  fig.ylabel = "speedup";
  for (const int n : {12, 24, 48}) {
    const cn::Problem p = cn::random_problem(n, 1987 + n);
    const double t_seq = sequential_seconds(p);
    const std::string label = std::to_string(n) + "x" + std::to_string(n);
    for (const int mesh : {1, 2, 3, 4}) {
      if (n % mesh != 0) continue;
      fig.add(label, mesh * mesh, t_seq / mesh_seconds(p, mesh));
    }
  }
  return emit_figure(argc, argv, std::cout, fig);
}
