// Figure 3: Base Benchmark — Throughput vs. Message Length.
//
// One process establishes a loop-back connection through an LNVC and
// alternates between sending and receiving fixed-length messages (paper
// §4).  The paper's curve rises with message length toward a ~25 KB/s
// asymptote where message copying dominates.
//
// Method: two simulated runs per point (R and 3R round trips); the
// reported throughput is the differential rate, which cancels open/close
// and startup costs.
#include <iostream>

#include "mpf/benchlib/figure.hpp"
#include "mpf/benchlib/simrun.hpp"
#include "mpf/benchlib/workloads.hpp"

namespace {

using namespace mpf;
using namespace mpf::benchlib;

Config bench_config() {
  Config c;
  c.max_lnvcs = 8;
  c.max_processes = 4;
  c.block_payload = 10;  // the paper's experiments used 10-byte blocks
  c.message_blocks = 4096;
  return c;
}

double loopback_throughput(std::size_t len) {
  constexpr int kRounds = 20;
  auto run = [&](int rounds) {
    return run_sim(bench_config(), 1, [&](Facility f, int) {
      base_loopback(f, len, rounds);
    });
  };
  const SimMetrics lo = run(kRounds);
  const SimMetrics hi = run(3 * kRounds);
  const double dt = hi.seconds - lo.seconds;
  const double dbytes =
      static_cast<double>(hi.bytes_delivered - lo.bytes_delivered);
  return dbytes / dt;
}

}  // namespace

int main(int argc, char** argv) {
  Figure fig;
  fig.id = "Figure 3";
  fig.title = "Base Benchmark";
  fig.subtitle = "Throughput vs. Message Length (simulated Balance 21000)";
  fig.xlabel = "message_bytes";
  fig.ylabel = "throughput_bytes_per_sec";
  for (const std::size_t len :
       {16u, 64u, 128u, 256u, 384u, 512u, 768u, 1024u, 1280u, 1536u, 1792u,
        2048u}) {
    fig.add("throughput", static_cast<double>(len), loopback_throughput(len));
  }
  return emit_figure(argc, argv, std::cout, fig);
}
