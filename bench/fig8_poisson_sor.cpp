// Figure 8: Poisson Elliptic PDE Solver with SOR Iterations —
// Per-Iteration Speedup vs. Dimension (N).
//
// The grid is partitioned into N x N subgrids; each iteration exchanges
// subgrid boundaries with the four neighbours and reports convergence to
// a monitor (paper §4).  Per-iteration time comes from a differential of
// two fixed-iteration runs (cancels startup and gather costs); as in the
// paper, speedups are relative to the smallest parallel solver (N = 2,
// i.e. 4 processes), because no equivalent sequential solver was measured
// there.  The paper's shape: the 65x65 problem keeps speeding up through
// N = 4, the 9x9 problem stays flat — communication dominates its tiny
// subgrids.
#include <iostream>
#include <map>

#include "mpf/apps/poisson_sor.hpp"
#include "mpf/benchlib/figure.hpp"
#include "mpf/benchlib/simrun.hpp"

namespace {

using namespace mpf;
using namespace mpf::benchlib;
namespace sor = mpf::apps::sor;

Config bench_config() {
  Config c;
  c.max_lnvcs = 160;
  c.max_processes = 24;
  c.block_payload = 10;
  c.message_blocks = 65536;
  return c;
}

double per_iteration_seconds(int lattice, int nside) {
  auto run = [&](int iters) {
    sor::Params params;
    params.grid = lattice - 2;  // paper counts boundary points in PxP
    params.procs_side = nside;
    params.fixed_iters = iters;
    const SimMetrics m = run_sim(bench_config(),
                                 sor::required_processes(params),
                                 [&](Facility f, int rank) {
                                   (void)sor::worker(f, rank, params);
                                 });
    return m.seconds;
  };
  const double lo = run(2);
  const double hi = run(6);
  return (hi - lo) / 4.0;
}

}  // namespace

int main(int argc, char** argv) {
  Figure times;
  times.id = "Figure 8 (raw)";
  times.title = "Poisson Elliptic PDE Solver with SOR Iterations";
  times.subtitle = "Per-iteration virtual time (simulated Balance 21000)";
  times.xlabel = "dimension_N";
  times.ylabel = "seconds_per_iteration";

  Figure fig;
  fig.id = "Figure 8";
  fig.title = "Poisson Elliptic PDE Solver with SOR Iterations";
  fig.subtitle = "Per Iteration Speedup vs. Dimension (relative to N=2)";
  fig.xlabel = "dimension_N";
  fig.ylabel = "per_iteration_speedup";

  for (const int lattice : {9, 17, 33, 65}) {
    const std::string label =
        std::to_string(lattice) + "x" + std::to_string(lattice);
    std::map<int, double> t;
    for (const int nside : {2, 3, 4}) {
      t[nside] = per_iteration_seconds(lattice, nside);
      times.add(label, nside, t[nside]);
    }
    for (const int nside : {2, 3, 4}) {
      fig.add(label, nside, t[2] / t[nside]);
    }
  }
  print_figure(std::cout, times);
  return emit_figure(argc, argv, std::cout, fig);
}
