// Figure 5: Broadcast Benchmark — Throughput vs Receiving Processes.
//
// Like fcfs, but the N receivers use the BROADCAST protocol, so every
// receiver copies every message; the effective (delivered) throughput
// scales with N because the copies proceed concurrently.  The paper
// reports 687,245 bytes/s for 1024-byte messages and 16 receivers.
#include <iostream>

#include "mpf/benchlib/figure.hpp"
#include "mpf/benchlib/simrun.hpp"
#include "mpf/benchlib/workloads.hpp"

namespace {

using namespace mpf;
using namespace mpf::benchlib;

Config bench_config() {
  Config c;
  c.max_lnvcs = 16;
  c.max_processes = 24;
  c.block_payload = 10;
  c.message_blocks = 32768;
  return c;
}

double broadcast_throughput(std::size_t len, int nrecv) {
  auto run = [&](int msgs) {
    return run_sim(bench_config(), nrecv + 1, [&](Facility f, int rank) {
      if (rank == 0) {
        broadcast_sender(f, len, msgs, nrecv);
      } else {
        broadcast_receiver(f, rank, msgs, nrecv);
      }
    });
  };
  const SimMetrics lo = run(24);
  const SimMetrics hi = run(72);
  return static_cast<double>(hi.bytes_delivered - lo.bytes_delivered) /
         (hi.seconds - lo.seconds);
}

}  // namespace

int main(int argc, char** argv) {
  Figure fig;
  fig.id = "Figure 5";
  fig.title = "Broadcast Benchmark";
  fig.subtitle = "Throughput vs Receiving Processes (simulated Balance 21000)";
  fig.xlabel = "receivers";
  fig.ylabel = "delivered_bytes_per_sec";
  for (const std::size_t len : {16u, 128u, 1024u}) {
    const std::string label = std::to_string(len) + "B";
    for (const int nrecv : {1, 2, 4, 8, 12, 16}) {
      fig.add(label, nrecv, broadcast_throughput(len, nrecv));
    }
  }
  return emit_figure(argc, argv, std::cout, fig);
}
