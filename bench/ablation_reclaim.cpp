// Ablation: broadcast-message reclamation policy.
//
// DESIGN.md §3: the default (paper-faithful) policy reclaims a message on
// an all-BROADCAST LNVC once every connected receiver has read it; the
// alternative retains everything for potential late FCFS joiners.  This
// bench shows the retention mode's unbounded buffer growth — the exact
// pathology that wrecked Figure 7 speedups during bring-up — by streaming
// pivot-row-sized broadcasts and watching the pool footprint.
#include <iostream>

#include "mpf/benchlib/figure.hpp"
#include "mpf/benchlib/simrun.hpp"
#include "mpf/benchlib/workloads.hpp"

namespace {

using namespace mpf;
using namespace mpf::benchlib;

SimMetrics broadcast_run(bool eager_reclaim, int msgs) {
  Config c;
  c.max_lnvcs = 16;
  c.max_processes = 8;
  c.block_payload = 10;
  c.message_blocks = 65536;
  c.reclaim_broadcast_only = eager_reclaim;
  constexpr int kRecv = 4;
  constexpr std::size_t kLen = 784;  // a 96-column pivot row
  return run_sim(c, kRecv + 1, [&](Facility f, int rank) {
    if (rank == 0) {
      broadcast_sender(f, kLen, msgs, kRecv);
    } else {
      broadcast_receiver(f, rank, msgs, kRecv);
    }
  });
}

}  // namespace

int main(int argc, char** argv) {
  Figure footprint;
  footprint.id = "Ablation A4a";
  footprint.title = "Reclaim policy";
  footprint.subtitle = "Peak buffer footprint vs messages broadcast";
  footprint.xlabel = "messages";
  footprint.ylabel = "peak_footprint_bytes";
  Figure rate;
  rate.id = "Ablation A4b";
  rate.title = "Reclaim policy";
  rate.subtitle = "Delivered throughput vs messages broadcast";
  rate.xlabel = "messages";
  rate.ylabel = "delivered_bytes_per_sec";
  for (const int msgs : {8, 16, 32, 64, 128}) {
    for (const bool eager : {true, false}) {
      const SimMetrics m = broadcast_run(eager, msgs);
      const char* label = eager ? "eager (default)" : "retain";
      footprint.add(label, msgs, static_cast<double>(m.peak_footprint));
      rate.add(label, msgs, m.delivered_throughput());
    }
  }
  print_figure(std::cout, footprint);
  return emit_figure(argc, argv, std::cout, rate);
}
