// Task farm: a coordinator multiplexes several result circuits with
// receive_any() while workers pull jobs from a shared FCFS circuit; a
// distributed Accumulator tracks global progress on every replica.
//
//   ./build/examples/task_farm [workers] [jobs]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "mpf/apps/coordination.hpp"
#include "mpf/core/ports.hpp"
#include "mpf/dvar/dvar.hpp"
#include "mpf/runtime/group.hpp"
#include "mpf/shm/region.hpp"

int main(int argc, char** argv) {
  using namespace mpf;

  const int workers = argc > 1 ? std::atoi(argv[1]) : 3;
  const int jobs = argc > 2 ? std::atoi(argv[2]) : 24;
  if (workers <= 0 || workers > 8 || jobs <= 0) {
    std::fprintf(stderr, "usage: %s [1..8 workers] [jobs>0]\n", argv[0]);
    return 2;
  }

  Config config;
  config.max_lnvcs = 32;
  config.max_processes = 16;
  shm::HeapRegion region(config.derived_arena_bytes());
  Facility facility = Facility::create(config, region);

  struct Job {
    int id;
    int x;
  };
  struct Result {
    int id;
    long y;
  };

  rt::run_group(rt::Backend::thread, workers + 1, [&](int rank) {
    if (rank == 0) {
      // Coordinator: one result circuit per worker, multiplexed.
      Participant self(facility, 0);
      SendPort job_tx = self.open_send("jobs");
      std::vector<ReceivePort> results;
      std::vector<ReceivePort*> ports;
      for (int w = 1; w <= workers; ++w) {
        results.push_back(self.open_receive("results." + std::to_string(w),
                                            Protocol::fcfs));
      }
      for (auto& r : results) ports.push_back(&r);
      dvar::Accumulator<int> progress(facility, 0, "progress");
      apps::startup_barrier(facility, 0, workers + 1, "farm");

      for (int j = 0; j < jobs; ++j) job_tx.send_value(Job{j, j * 7});
      for (int w = 0; w < workers; ++w) job_tx.send_value(Job{-1, 0});

      std::vector<long> answers(jobs, -1);
      std::vector<std::byte> buf(sizeof(Result));
      for (int got = 0; got < jobs; ++got) {
        const ReceivedAny r = receive_any(facility, 0, ports, buf);
        Result res{};
        std::memcpy(&res, buf.data(), sizeof(res));
        answers[res.id] = res.y;
        std::printf("coordinator: job %-3d = %-6ld (worker circuit %zu, "
                    "global progress %d/%d)\n",
                    res.id, res.y, r.index + 1, progress.value(), jobs);
      }
      long bad = 0;
      for (int j = 0; j < jobs; ++j) bad += answers[j] != 49l * j * j;
      std::printf("all %d jobs done, %ld wrong\n", jobs, bad);
    } else {
      // Worker `rank`: pull, square, report; bump the shared progress.
      Participant self(facility, static_cast<ProcessId>(rank));
      ReceivePort job_rx = self.open_receive("jobs", Protocol::fcfs);
      SendPort result_tx =
          self.open_send("results." + std::to_string(rank));
      dvar::Accumulator<int> progress(facility,
                                      static_cast<ProcessId>(rank),
                                      "progress");
      apps::startup_barrier(facility, static_cast<ProcessId>(rank),
                            workers + 1, "farm");
      for (;;) {
        const Job job = job_rx.receive_value<Job>();
        if (job.id < 0) break;
        result_tx.send_value(Result{job.id, 1l * job.x * job.x});
        progress.add(1);
      }
    }
  });
  return 0;
}
