// Quickstart: the smallest useful MPF program.
//
// Two threads share a facility; one opens a send connection on the LNVC
// "greetings", the other an FCFS receive connection.  Build & run:
//   ./build/examples/quickstart
#include <cstdio>
#include <thread>

#include "mpf/core/ports.hpp"
#include "mpf/shm/region.hpp"

int main() {
  using namespace mpf;

  // init(): size the shared region from the configured maxima.
  Config config;
  config.max_lnvcs = 8;
  config.max_processes = 4;
  shm::HeapRegion region(config.derived_arena_bytes());
  Facility facility = Facility::create(config, region);

  std::thread receiver([&] {
    Participant self(facility, /*process id=*/1);
    ReceivePort rx = self.open_receive("greetings", Protocol::fcfs);
    for (int i = 0; i < 3; ++i) {
      const auto bytes = rx.receive_bytes();
      std::printf("received: %.*s\n", static_cast<int>(bytes.size()),
                  reinterpret_cast<const char*>(bytes.data()));
    }
  });

  {
    Participant self(facility, /*process id=*/0);
    SendPort tx = self.open_send("greetings");
    tx.send("hello from 1987");
    tx.send("message passing over shared memory");
    tx.send("goodbye");
    // Messages sent before the receiver joins are kept as FCFS backlog —
    // but only while some connection keeps the LNVC alive.  Closing this
    // send connection too early would delete the LNVC and discard them
    // (the lifetime hazard of paper §3.2), so hold it until the receiver
    // is done.
    receiver.join();
  }
  const FacilityStats stats = facility.stats();
  std::printf("facility stats: %llu sends, %llu receives, %llu bytes\n",
              static_cast<unsigned long long>(stats.sends),
              static_cast<unsigned long long>(stats.receives),
              static_cast<unsigned long long>(stats.bytes_delivered));
  return 0;
}
