// Poisson SOR example: solve -laplace(u) = f on the unit square with the
// paper's subgrid decomposition (FCFS boundary exchange, BROADCAST
// convergence control) and compare with the analytic solution.
//
//   ./build/examples/poisson_sor_solve [grid] [procs_side]
#include <cstdio>
#include <cstdlib>

#include "mpf/apps/poisson_sor.hpp"
#include "mpf/runtime/group.hpp"
#include "mpf/runtime/timer.hpp"
#include "mpf/shm/region.hpp"

int main(int argc, char** argv) {
  using namespace mpf;
  namespace sor = mpf::apps::sor;

  sor::Params params;
  params.grid = argc > 1 ? std::atoi(argv[1]) : 31;
  params.procs_side = argc > 2 ? std::atoi(argv[2]) : 2;
  params.tol = 1e-7;
  params.max_iters = 20000;
  if (params.grid <= 0 || params.procs_side <= 0 ||
      params.procs_side > params.grid) {
    std::fprintf(stderr, "usage: %s [grid>0] [procs_side<=grid]\n", argv[0]);
    return 2;
  }

  Config config;
  config.max_lnvcs = 256;
  config.max_processes = 32;
  config.message_blocks = 1 << 17;
  shm::HeapRegion region(config.derived_arena_bytes());
  Facility facility = Facility::create(config, region);

  sor::Result result;
  rt::WallTimer timer;
  rt::run_group(rt::Backend::thread, sor::required_processes(params),
                [&](int rank) {
                  auto r = sor::worker(facility, rank, params);
                  if (rank == 0) result = std::move(r);
                });
  const double wall_s = timer.elapsed_s();

  std::printf("grid=%dx%d mesh=%dx%d (+1 monitor process)\n", params.grid,
              params.grid, params.procs_side, params.procs_side);
  std::printf("iterations                = %d\n", result.iterations);
  std::printf("max |u - analytic|        = %.3e (discretization-limited)\n",
              sor::max_error_vs_analytic(result.u, params.grid));
  std::printf("wall time                 = %.4fs\n", wall_s);
  const FacilityStats stats = facility.stats();
  std::printf("messages                  = %llu sent, %.1f KB delivered\n",
              static_cast<unsigned long long>(stats.sends),
              static_cast<double>(stats.bytes_delivered) / 1024.0);
  return 0;
}
