// Conversation: the LNVC model's defining feature — participants enter
// and leave at any time (paper §1's conversation analogy).
//
// A "newsroom" LNVC carries a stream of headlines:
//   * two BROADCAST subscribers each see every headline published while
//     they are joined — the late subscriber misses the early news;
//   * a pool of FCFS archivers splits the same stream: each headline is
//     archived by exactly one of them;
//   * the editor (sender) leaves and rejoins mid-stream without
//     disturbing anyone.
#include <cstdio>
#include <string>
#include <vector>

#include "mpf/core/ports.hpp"
#include "mpf/runtime/group.hpp"
#include "mpf/shm/region.hpp"
#include "mpf/sync/barrier.hpp"

int main() {
  using namespace mpf;

  Config config;
  config.max_lnvcs = 8;
  config.max_processes = 8;
  shm::HeapRegion region(config.derived_arena_bytes());
  Facility facility = Facility::create(config, region);
  sync::SenseBarrier phase(4);  // editor + early subscriber + 2 archivers

  auto headline = [](int i) { return "headline #" + std::to_string(i); };

  rt::run_group(rt::Backend::thread, 5, [&](int rank) {
    switch (rank) {
      case 0: {  // the editor
        Participant self(facility, 0);
        ReceivePort log =
            self.open_receive("archive", Protocol::fcfs);  // keeps it alive
        {
          SendPort tx = self.open_send("newsroom");
          phase.arrive_and_wait();  // early subscriber + archivers joined
          for (int i = 1; i <= 3; ++i) tx.send(headline(i));
        }  // the editor leaves the conversation...
        {
          SendPort cue = self.open_send("latecomer.cue");
          ReceivePort ack =
              self.open_receive("latecomer.ack", Protocol::fcfs);
          SendPort tx = self.open_send("newsroom");  // ...and rejoins
          cue.send("join now");  // invite the late subscriber mid-stream
          (void)ack.receive_bytes();  // ...and wait until it has joined
          for (int i = 4; i <= 6; ++i) tx.send(headline(i));
          tx.send("FIN");
          tx.send("FIN");  // one per FCFS archiver
        }
        // Collect what the archivers filed (6 headlines + 2 FIN notices).
        for (int i = 0; i < 8; ++i) {
          const auto bytes = log.receive_bytes();
          std::printf("editor: archived    '%.*s'\n",
                      static_cast<int>(bytes.size()),
                      reinterpret_cast<const char*>(bytes.data()));
        }
        break;
      }
      case 1: {  // early BROADCAST subscriber: sees everything
        Participant self(facility, 1);
        ReceivePort rx = self.open_receive("newsroom", Protocol::broadcast);
        phase.arrive_and_wait();
        for (;;) {
          const auto bytes = rx.receive_bytes();
          const std::string s(reinterpret_cast<const char*>(bytes.data()),
                              bytes.size());
          std::printf("subscriber-early:   '%s'\n", s.c_str());
          if (s == "FIN") break;
        }
        break;
      }
      case 2:
      case 3: {  // FCFS archivers: split the stream between them
        Participant self(facility, static_cast<ProcessId>(rank));
        ReceivePort rx = self.open_receive("newsroom", Protocol::fcfs);
        SendPort file = self.open_send("archive");
        phase.arrive_and_wait();
        for (;;) {
          const auto bytes = rx.receive_bytes();
          const std::string s(reinterpret_cast<const char*>(bytes.data()),
                              bytes.size());
          file.send("by archiver " + std::to_string(rank) + ": " + s);
          if (s == "FIN") break;  // each archiver consumes one FIN
        }
        break;
      }
      case 4: {  // latecomer BROADCAST subscriber: joins mid-stream
        Participant self(facility, 4);
        // Wait for the editor's cue (FCFS backlog keeps it safe even if
        // we open the cue circuit after the editor sent it).
        {
          ReceivePort cue = self.open_receive("latecomer.cue",
                                              Protocol::fcfs);
          (void)cue.receive_bytes();
        }
        // Joining now means missing headlines 1-3: a BROADCAST receiver
        // only sees messages sent after it joined.
        ReceivePort rx = self.open_receive("newsroom", Protocol::broadcast);
        SendPort ack = self.open_send("latecomer.ack");
        ack.send("joined");
        for (;;) {
          const auto bytes = rx.receive_bytes();
          const std::string s(reinterpret_cast<const char*>(bytes.data()),
                              bytes.size());
          std::printf("subscriber-late:    '%s'\n", s.c_str());
          if (s == "FIN") break;
        }
        break;
      }
    }
  });
  std::printf("conversation over; live LNVCs: %zu\n", facility.lnvc_count());
  return 0;
}
