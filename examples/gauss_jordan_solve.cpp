// Gauss-Jordan example: solve a random dense system with the paper's
// message-based algorithm (FCFS maxima to an arbiter, BROADCAST pivot
// rows), then verify against the sequential solver.
//
//   ./build/examples/gauss_jordan_solve [n] [nprocs]
#include <cstdio>
#include <cstdlib>

#include "mpf/apps/gauss_jordan.hpp"
#include "mpf/runtime/group.hpp"
#include "mpf/runtime/timer.hpp"
#include "mpf/shm/region.hpp"

int main(int argc, char** argv) {
  using namespace mpf;
  namespace gj = mpf::apps::gj;

  const int n = argc > 1 ? std::atoi(argv[1]) : 64;
  const int nprocs = argc > 2 ? std::atoi(argv[2]) : 4;
  if (n <= 0 || nprocs <= 0 || nprocs > 16) {
    std::fprintf(stderr, "usage: %s [n>0] [1<=nprocs<=16]\n", argv[0]);
    return 2;
  }

  const gj::Problem problem = gj::random_problem(n, /*seed=*/7);

  Config config;
  config.max_lnvcs = 16;
  config.max_processes = 32;
  shm::HeapRegion region(config.derived_arena_bytes());
  Facility facility = Facility::create(config, region);

  std::vector<double> x;
  rt::WallTimer timer;
  rt::run_group(rt::Backend::thread, nprocs, [&](int rank) {
    auto mine = gj::worker(facility, rank, nprocs, problem);
    if (rank == 0) x = std::move(mine);
  });
  const double par_s = timer.elapsed_s();

  timer.reset();
  const std::vector<double> reference = gj::solve_sequential(problem);
  const double seq_s = timer.elapsed_s();

  double worst = 0;
  for (int i = 0; i < n; ++i) {
    worst = std::max(worst, std::abs(x[i] - reference[i]));
  }
  std::printf("n=%d nprocs=%d\n", n, nprocs);
  std::printf("residual ||Ax-b||_inf          = %.3e\n",
              gj::max_residual(problem, x));
  std::printf("max |x_par - x_seq|            = %.3e\n", worst);
  std::printf("wall time parallel/sequential  = %.4fs / %.4fs\n", par_s,
              seq_s);
  std::printf("(host has %d CPU(s); the simulated-Balance speedups are in "
              "bench/fig7_gauss_jordan)\n",
              rt::online_cpus());
  return worst < 1e-8 ? 0 : 1;
}
