// The paper's programming model, verbatim: a group of Unix processes
// created with fork() that interact through the eight C primitives of §2.
// The facility's shared memory is an anonymous shared mapping set up by
// mpf_init() before the fork, exactly like the paper's mapped region.
//
//   ./build/examples/paper_c_api
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "mpf/compat/mpf.h"

namespace {

int worker(int pid) {
  // Each worker takes jobs from the FCFS conversation "jobs" and reports
  // on "results"; the BROADCAST conversation "shutdown" ends everyone.
  const int jobs = mpf_open_receive(pid, "jobs", MPF_FCFS);
  const int results = mpf_open_send(pid, "results");
  const int shutdown = mpf_open_receive(pid, "shutdown", MPF_BROADCAST);
  if (jobs < 0 || results < 0 || shutdown < 0) return 1;

  for (;;) {
    char task[64];
    int len = sizeof(task);
    if (mpf_message_receive(pid, jobs, task, &len) != 0) return 2;
    if (len == 4 && std::memcmp(task, "QUIT", 4) == 0) break;
    char reply[96];
    const int rlen = std::snprintf(reply, sizeof(reply),
                                   "worker %d did '%.*s'", pid, len, task);
    mpf_message_send(pid, results, reply, rlen);
  }
  // The shutdown notice was broadcast before the QUIT pills, and this
  // worker joined the conversation before forking off work — so unlike
  // the FCFS case, check_receive is reliable here (paper §2): only we
  // advance our private head pointer.
  if (mpf_check_receive(pid, shutdown) != 1) return 3;
  char notice[16];
  int nlen = sizeof(notice);
  if (mpf_message_receive(pid, shutdown, notice, &nlen) != 0) return 4;
  mpf_close_receive(pid, jobs);
  mpf_close_send(pid, results);
  mpf_close_receive(pid, shutdown);
  return 0;
}

}  // namespace

int main() {
  if (mpf_init(/*max_lnvcs=*/16, /*max_processes=*/8) != 0) {
    std::fprintf(stderr, "mpf_init failed\n");
    return 1;
  }

  constexpr int kWorkers = 3;
  constexpr int kJobs = 9;

  // The coordinator joins everything *before* forking so no message can
  // be lost to the LNVC-lifetime race of paper §3.2.
  const int jobs = mpf_open_send(0, "jobs");
  const int results = mpf_open_receive(0, "results", MPF_FCFS);
  const int shutdown = mpf_open_send(0, "shutdown");

  pid_t children[kWorkers];
  for (int w = 0; w < kWorkers; ++w) {
    const pid_t child = fork();
    if (child == 0) _exit(worker(w + 1));
    children[w] = child;
  }

  for (int j = 0; j < kJobs; ++j) {
    char task[32];
    const int len = std::snprintf(task, sizeof(task), "job-%d", j);
    mpf_message_send(0, jobs, task, len);
  }
  for (int j = 0; j < kJobs; ++j) {
    char reply[96];
    int len = sizeof(reply);
    if (mpf_message_receive(0, results, reply, &len) == 0) {
      std::printf("coordinator got: %.*s\n", len, reply);
    }
  }
  // Broadcast the shutdown notice first, then one QUIT pill per worker so
  // every blocking receive terminates.
  mpf_message_send(0, shutdown, "bye", 3);
  for (int w = 0; w < kWorkers; ++w) mpf_message_send(0, jobs, "QUIT", 4);

  int failures = 0;
  for (const pid_t child : children) {
    int status = 0;
    waitpid(child, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      ++failures;
      std::fprintf(stderr, "worker pid %d exited %d (signalled=%d)\n",
                   (int)child, WIFEXITED(status) ? WEXITSTATUS(status) : -1,
                   WIFSIGNALED(status) ? WTERMSIG(status) : 0);
    }
  }
  mpf_close_send(0, jobs);
  mpf_close_receive(0, results);
  mpf_close_send(0, shutdown);
  mpf_shutdown();
  std::printf("done; %d worker failures\n", failures);
  return failures;
}
