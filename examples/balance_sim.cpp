// Balance-21000 simulation example: run an MPF workload on the modeled
// 1987 machine and read off virtual-time performance — the mechanism
// behind every figure bench.
//
//   ./build/examples/balance_sim [receivers] [message_bytes]
#include <cstdio>
#include <cstdlib>

#include "mpf/benchlib/simrun.hpp"
#include "mpf/benchlib/workloads.hpp"

int main(int argc, char** argv) {
  using namespace mpf;
  using namespace mpf::benchlib;

  const int receivers = argc > 1 ? std::atoi(argv[1]) : 8;
  const std::size_t len = argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 1024;
  if (receivers <= 0 || receivers > 19 || len == 0 || len > 65536) {
    std::fprintf(stderr, "usage: %s [1..19 receivers] [1..65536 bytes]\n",
                 argv[0]);
    return 2;
  }

  Config config;
  config.max_lnvcs = 16;
  config.max_processes = 24;
  config.block_payload = 10;  // the paper's block size
  config.message_blocks = 32768;

  constexpr int kMsgs = 50;
  const SimMetrics m =
      run_sim(config, receivers + 1, [&](Facility f, int rank) {
        if (rank == 0) {
          broadcast_sender(f, len, kMsgs, receivers);
        } else {
          broadcast_receiver(f, rank, kMsgs, receivers);
        }
      });

  std::printf("simulated Sequent Balance 21000 (20x NS32032, 80 MB/s bus)\n");
  std::printf("workload: 1 sender -> %d BROADCAST receivers, %zu-byte "
              "messages x %d\n",
              receivers, len, kMsgs);
  std::printf("virtual time            = %.3f s\n", m.seconds);
  std::printf("delivered throughput    = %.0f bytes/s\n",
              m.delivered_throughput());
  std::printf("messages sent/received  = %llu / %llu\n",
              static_cast<unsigned long long>(m.sends),
              static_cast<unsigned long long>(m.receives));
  std::printf("peak buffer footprint   = %llu bytes, %llu page faults\n",
              static_cast<unsigned long long>(m.peak_footprint),
              static_cast<unsigned long long>(m.page_faults));
  std::printf("(paper Figure 5 reports 687,245 bytes/s for 16 receivers "
              "of 1024-byte messages)\n");
  return 0;
}
